"""Time-sliced window queries: per-window answers and union merges."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.serve.multiplex import EngineRouter
from repro.stream import (
    BudgetSchedule,
    CountWindowPolicy,
    WindowScheduler,
    WindowShard,
    answer_windows,
    as_event,
    list_windows,
)

from .conftest import make_events


@pytest.fixture
def released(store, rng):
    """Four noise-free windows of 150 events each, plus the raw events."""
    events = make_events(rng, 600)
    WindowScheduler(
        store, "clicks", 6, BudgetSchedule(math.inf),
        CountWindowPolicy(150), view_width=4,
    ).run(events)
    return events


def _ground_truth(events, lo, hi, attrs):
    shard = WindowShard(6, chunk_records=64)
    for event in events[lo:hi]:
        shard.add(as_event(event))
    return shard.finish().marginal(attrs).counts


def test_list_windows_orders_and_annotates(store, released):
    rows = list_windows(store, "clicks")
    assert [r["index"] for r in rows] == [0, 1, 2, 3]
    assert all(r["records"] == 150 for r in rows)
    assert all(math.isinf(r["epsilon"]) for r in rows)
    assert rows[0]["spec"] == "clicks@1"


def test_list_windows_unknown_dataset_is_empty(store):
    assert list_windows(store, "nope") == []


def test_answer_windows_union_equals_record_weighted_merge(
    store, released
):
    """At epsilon=inf the last-3-window union must EXACTLY equal the
    marginal of the concatenated raw records — the acceptance bound
    with the DP noise term at zero."""
    attrs = (0, 2)
    with EngineRouter(store) as router:
        answer = answer_windows(router, "clicks", attrs, last=3)
    assert [s.index for s in answer.slices] == [1, 2, 3]
    # Union == sum of the per-window tables (record-weighted merge)...
    merged = sum(s.answer.table.counts for s in answer.slices)
    np.testing.assert_allclose(answer.union.counts, merged)
    # ...== ground truth over the union of the raw records.
    np.testing.assert_allclose(
        answer.union.counts,
        _ground_truth(released, 150, 600, attrs),
    )
    # And each slice matches its own window's raw records.
    for s in answer.slices:
        np.testing.assert_allclose(
            s.answer.table.counts,
            _ground_truth(released, 150 * s.index, 150 * (s.index + 1), attrs),
        )


def test_answer_windows_explicit_selection(store, released):
    with EngineRouter(store) as router:
        answer = answer_windows(router, "clicks", (0,), windows=[0, 3])
        assert [s.index for s in answer.slices] == [0, 3]
        with pytest.raises(QueryError, match="unknown window"):
            answer_windows(router, "clicks", (0,), windows=[9])
        with pytest.raises(QueryError, match="last"):
            answer_windows(router, "clicks", (0,), last=0)


def test_answer_windows_default_selects_everything(store, released):
    with EngineRouter(store) as router:
        answer = answer_windows(router, "clicks", (1,))
    assert len(answer.slices) == 4
    assert answer.union.total() == pytest.approx(600.0)
    assert answer.union.meta["windows"] == [0, 1, 2, 3]


def test_answer_windows_unknown_dataset_404s(store):
    with EngineRouter(store) as router:
        with pytest.raises(QueryError, match="unknown dataset"):
            answer_windows(router, "nope", (0,))


def test_answer_windows_survives_pruned_history(store, released):
    """After retention drops old windows, last-k shrinks to what's left."""
    store.prune("clicks", keep_last=2)
    with EngineRouter(store) as router:
        answer = answer_windows(router, "clicks", (0, 1), last=3)
    assert [s.index for s in answer.slices] == [2, 3]
    assert answer.to_json()["union"]["records"] == 300.0


def test_windows_answer_json_shape(store, released):
    with EngineRouter(store) as router:
        payload = answer_windows(router, "clicks", (0, 1), last=2).to_json()
    assert payload["dataset"] == "clicks"
    assert payload["attrs"] == [0, 1]
    assert len(payload["windows"]) == 2
    for blob in payload["windows"]:
        assert set(blob["window"]) == {
            "index", "version", "start", "end", "records", "epsilon",
        }
        assert len(blob["counts"]) == 4
    assert payload["union"]["merged"] == 2
