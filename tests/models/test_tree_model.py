"""Tests for Chow-Liu structure learning and tree-model queries."""

import networkx as nx
import numpy as np
import pytest

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.datasets.mchain import markov_chain_dataset
from repro.exceptions import ReconstructionError
from repro.marginals.dataset import BinaryDataset
from repro.models.chow_liu import (
    _mutual_information,
    chow_liu_tree,
    pairwise_mutual_information,
)
from repro.models.tree_model import TreeModel


def _chain_dataset(rng, n=30_000, d=8, flip=0.1) -> BinaryDataset:
    """A hidden-Markov-free chain: x_{j+1} = x_j flipped w.p. ``flip``."""
    data = np.zeros((n, d), dtype=np.uint8)
    data[:, 0] = rng.random(n) < 0.5
    for j in range(1, d):
        flips = rng.random(n) < flip
        data[:, j] = data[:, j - 1] ^ flips
    return BinaryDataset(data, name="chain")


@pytest.fixture(scope="module")
def chain_synopsis():
    rng = np.random.default_rng(0)
    dataset = _chain_dataset(rng)
    design = best_design(8, 4, 2)
    synopsis = PriView(float("inf"), design=design, seed=0).fit(dataset)
    return dataset, synopsis


class TestMutualInformation:
    def test_independent_is_zero(self):
        joint = np.array([0.25, 0.25, 0.25, 0.25])
        assert _mutual_information(joint) == pytest.approx(0.0, abs=1e-12)

    def test_identical_is_entropy(self):
        joint = np.array([0.5, 0.0, 0.0, 0.5])
        assert _mutual_information(joint) == pytest.approx(np.log(2))

    def test_nonnegative_on_noise(self, rng):
        for _ in range(20):
            assert _mutual_information(rng.random(4)) >= 0.0

    def test_degenerate_zero(self):
        assert _mutual_information(np.zeros(4)) == 0.0


class TestChowLiu:
    def test_mi_graph_complete(self, chain_synopsis):
        _, synopsis = chain_synopsis
        graph = pairwise_mutual_information(synopsis)
        assert graph.number_of_edges() == 8 * 7 // 2

    def test_recovers_chain_structure(self, chain_synopsis):
        """On chain data the MST is exactly the chain."""
        _, synopsis = chain_synopsis
        tree = chow_liu_tree(synopsis)
        expected = {(j, j + 1) for j in range(7)}
        found = {tuple(sorted(e)) for e in tree.edges}
        assert found == expected

    def test_uncovered_pair_rejected(self, chain_synopsis):
        from repro.covering.design import CoveringDesign

        dataset, _ = chain_synopsis
        # views miss the pair (0, 7)
        design = CoveringDesign(
            8, 4, 1, ((0, 1, 2, 3), (4, 5, 6, 7))
        )
        synopsis = PriView(float("inf"), design=design, seed=0).fit(dataset)
        with pytest.raises(ReconstructionError):
            pairwise_mutual_information(synopsis)


class TestTreeModelQueries:
    def test_covered_pair_matches_truth(self, chain_synopsis):
        dataset, synopsis = chain_synopsis
        model = TreeModel.from_synopsis(synopsis)
        truth = dataset.marginal((2, 3))
        estimate = model.marginal((2, 3))
        assert np.allclose(estimate.counts, truth.counts, rtol=0.05)

    def test_long_range_pair_through_chain(self, chain_synopsis):
        """(0, 7) spans the whole chain: no view covers it, yet the
        tree model recovers it through the intermediate nodes."""
        dataset, synopsis = chain_synopsis
        model = TreeModel.from_synopsis(synopsis)
        truth = dataset.marginal((0, 7))
        estimate = model.marginal((0, 7))
        err = np.abs(estimate.normalized() - truth.normalized()).max()
        assert err < 0.05

    def test_multi_attribute_query(self, chain_synopsis):
        dataset, synopsis = chain_synopsis
        model = TreeModel.from_synopsis(synopsis)
        attrs = (0, 3, 6)
        truth = dataset.marginal(attrs)
        estimate = model.marginal(attrs)
        assert estimate.attrs == attrs
        assert estimate.total() == pytest.approx(truth.total(), rel=0.01)
        assert np.abs(
            estimate.normalized() - truth.normalized()
        ).max() < 0.08

    def test_single_attribute(self, chain_synopsis):
        dataset, synopsis = chain_synopsis
        model = TreeModel.from_synopsis(synopsis)
        assert np.allclose(
            model.marginal((4,)).counts,
            dataset.marginal((4,)).counts,
            rtol=0.05,
        )

    def test_unknown_attribute_rejected(self, chain_synopsis):
        _, synopsis = chain_synopsis
        model = TreeModel.from_synopsis(synopsis)
        with pytest.raises(ReconstructionError):
            model.marginal((0, 99))

    def test_forest_components_independent(self, chain_synopsis):
        """With an explicit two-component forest, cross-component
        queries multiply the component marginals."""
        dataset, synopsis = chain_synopsis
        forest = nx.Graph()
        forest.add_nodes_from(range(8))
        forest.add_edges_from([(0, 1), (2, 3)])
        model = TreeModel.from_synopsis(synopsis, tree=forest)
        joint = model.marginal((1, 2)).normalized().reshape(2, 2)
        p1 = model.marginal((1,)).normalized()
        p2 = model.marginal((2,)).normalized()
        assert np.allclose(joint, np.outer(p2, p1), atol=1e-9)

    def test_cyclic_graph_rejected(self, chain_synopsis):
        _, synopsis = chain_synopsis
        cyclic = nx.cycle_graph(8)
        with pytest.raises(ReconstructionError):
            TreeModel.from_synopsis(synopsis, tree=cyclic)


class TestTreeModelVsMaxent:
    def test_tree_model_wins_on_chain_data(self):
        """The extension's motivating case: on order-1 Markov data a
        global tree model beats per-query max entropy for long-range
        marginals no view covers."""
        rng = np.random.default_rng(3)
        dataset = markov_chain_dataset(1, 40_000, length=16, rng=rng)
        design = best_design(16, 4, 2)
        synopsis = PriView(float("inf"), design=design, seed=1).fit(dataset)
        model = TreeModel.from_synopsis(synopsis)
        from repro.marginals.queries import random_attribute_sets

        attrs = next(
            q
            for q in random_attribute_sets(
                16, 4, 100, np.random.default_rng(0)
            )
            if not synopsis.is_covered(q)
        )
        truth = dataset.marginal(attrs).normalized()
        tree_err = np.abs(model.marginal(attrs).normalized() - truth).sum()
        maxent_err = np.abs(
            synopsis.marginal(attrs).normalized() - truth
        ).sum()
        assert tree_err <= maxent_err + 0.02
