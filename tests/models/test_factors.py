"""Tests for the discrete factor mini-library."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.models.factors import Factor


class TestConstruction:
    def test_rejects_unsorted_vars(self):
        with pytest.raises(DimensionError):
            Factor((2, 1), np.zeros(4))

    def test_rejects_wrong_size(self):
        with pytest.raises(DimensionError):
            Factor((0, 1), np.zeros(3))

    def test_ones(self):
        f = Factor.ones((3, 1))
        assert f.vars == (1, 3)
        assert np.all(f.values == 1.0)


class TestProduct:
    def test_disjoint_vars_outer_product(self):
        f = Factor((0,), np.array([2.0, 3.0]))
        g = Factor((1,), np.array([5.0, 7.0]))
        h = f.product(g)
        assert h.vars == (0, 1)
        # cell i: bit0 = var0, bit1 = var1
        assert np.allclose(h.values, [10.0, 15.0, 14.0, 21.0])

    def test_shared_vars_pointwise(self):
        f = Factor((0,), np.array([2.0, 3.0]))
        g = Factor((0,), np.array([10.0, 100.0]))
        h = f.product(g)
        assert h.vars == (0,)
        assert np.allclose(h.values, [20.0, 300.0])

    def test_partial_overlap(self):
        f = Factor((0, 1), np.array([1.0, 2.0, 3.0, 4.0]))
        g = Factor((1, 2), np.array([1.0, 10.0, 100.0, 1000.0]))
        h = f.product(g)
        assert h.vars == (0, 1, 2)
        # check one cell: (x0,x1,x2) = (1,0,1): f[(1,0)]=2, g[(0,1)]=100
        cell = 1 | (0 << 1) | (1 << 2)
        assert h.values[cell] == pytest.approx(200.0)

    def test_commutative(self, rng):
        f = Factor((0, 2), rng.random(4))
        g = Factor((1, 2), rng.random(4))
        assert np.allclose(f.product(g).values, g.product(f).values)


class TestMarginalize:
    def test_sums_variable_out(self):
        f = Factor((0, 1), np.array([1.0, 2.0, 3.0, 4.0]))
        g = f.marginalize_out(0)
        assert g.vars == (1,)
        assert np.allclose(g.values, [3.0, 7.0])
        h = f.marginalize_out(1)
        assert np.allclose(h.values, [4.0, 6.0])

    def test_missing_variable(self):
        with pytest.raises(DimensionError):
            Factor((0,), np.ones(2)).marginalize_out(3)

    def test_matches_marginal_table_projection(self, rng):
        from repro.marginals.table import MarginalTable

        values = rng.random(16)
        factor = Factor((0, 1, 2, 3), values)
        table = MarginalTable((0, 1, 2, 3), values)
        reduced = factor.marginalize_out(2).marginalize_out(0)
        assert np.allclose(
            reduced.values, table.project((1, 3)).counts
        )


class TestNormalize:
    def test_sums_to_one(self, rng):
        f = Factor((0, 1), rng.random(4) * 9).normalized()
        assert f.values.sum() == pytest.approx(1.0)

    def test_degenerate_uniform(self):
        f = Factor((0,), np.zeros(2)).normalized()
        assert np.allclose(f.values, 0.5)
