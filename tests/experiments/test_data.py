"""Tests for the experiment dataset helper."""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.data import experiment_dataset

TINY = ExperimentScale("tiny", num_queries=2, num_runs=1, max_records=3_000)


class TestExperimentDataset:
    def test_clickstream_names(self):
        ds = experiment_dataset("kosarak", TINY)
        assert ds.num_attributes == 32
        assert ds.num_records == 3_000

    def test_mchain_names(self):
        ds = experiment_dataset("mchain_2", TINY)
        assert ds.num_attributes == 64
        assert ds.name == "mchain_2"

    def test_cached_per_scale(self):
        a = experiment_dataset("msnbc", TINY)
        b = experiment_dataset("msnbc", TINY)
        assert a is b

    def test_different_orders_differ(self):
        a = experiment_dataset("mchain_1", TINY)
        b = experiment_dataset("mchain_3", TINY)
        assert a is not b

    def test_unknown_name_rejected(self):
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError):
            experiment_dataset("census", TINY)
