"""Tests for table drivers, the timing harness, registry and CLI."""

import pytest

from repro.exceptions import ReproError
from repro.experiments import tables, timing
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.cli import main

TINY = ExperimentScale("tiny", num_queries=2, num_runs=1, max_records=5_000)


class TestTables:
    def test_crossover_matches_paper(self):
        result = tables.run_crossover()
        values = {r.k: r.expected for r in result.rows}
        assert values == {2: 16, 3: 26, 4: 36, 5: 46}

    def test_t_choice_matches_paper(self):
        result = tables.run_t_choice()
        errs = {r.k: r.expected for r in result.rows}
        assert errs[2] == pytest.approx(0.00047, abs=5e-5)
        assert errs[3] == pytest.approx(0.0011, abs=1e-4)
        assert errs[4] == pytest.approx(0.0026, abs=2e-4)

    def test_t_choice_with_our_designs(self):
        result = tables.run_t_choice(use_paper_block_counts=False)
        errs = {r.k: r.expected for r in result.rows}
        assert errs[2] == pytest.approx(0.00047, abs=5e-5)  # same design
        assert errs[3] > errs[2]

    def test_run_all(self):
        results = tables.run()
        assert len(results) == 4

    def test_renderable(self):
        for result in tables.run():
            assert result.render()


class TestTiming:
    def test_rows_and_render(self):
        rows = timing.run(scale=TINY, cases=(("kosarak", 2),))
        assert len(rows) == 1
        row = rows[0]
        assert row.synopsis_seconds > 0
        assert row.q6_seconds > 0
        assert row.q8_seconds > 0
        text = timing.render(rows)
        assert "C_2" in text


class TestRegistry:
    def test_all_experiments_registered(self):
        assert {
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "figure6", "tables", "timing", "categorical",
        } == set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ReproError):
            run_experiment("figure9")

    def test_run_tables_via_registry(self):
        text = run_experiment("tables")
        assert "table-crossover" in text


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "timing" in out

    def test_run_tables(self, capsys):
        assert main(["run", "tables"]) == 0
        assert "Section 3.2" in capsys.readouterr().out

    def test_bad_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "figure9"])
