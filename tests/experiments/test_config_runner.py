"""Tests for experiment configuration and the generic runner."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.experiments.config import SCALES, get_scale
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    evaluate_mechanism,
)
from repro.metrics.candlestick import Candlestick


class TestScale:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "quick"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert get_scale().name == "medium"

    def test_explicit_name(self):
        assert get_scale("paper").num_queries == 200

    def test_pass_through(self):
        scale = SCALES["quick"]
        assert get_scale(scale) is scale

    def test_unknown(self):
        with pytest.raises(ReproError):
            get_scale("galactic")

    def test_paper_protocol_values(self):
        """Section 5: 200 query sets, 5 runs, full N."""
        paper = SCALES["paper"]
        assert paper.num_queries == 200
        assert paper.num_runs == 5
        assert paper.max_records is None


class _EchoMechanism:
    """Returns the exact marginal — zero error."""

    def __init__(self, dataset):
        self._dataset = dataset

    def marginal(self, attrs):
        return self._dataset.marginal(attrs)


class TestEvaluateMechanism:
    def test_exact_mechanism_zero_error(self, tiny_dataset):
        candle = evaluate_mechanism(
            lambda run: _EchoMechanism(tiny_dataset),
            tiny_dataset,
            [(0, 1), (2, 3)],
            num_runs=2,
        )
        assert candle.mean == 0.0
        assert candle.count == 2

    def test_js_metric(self, tiny_dataset):
        candle = evaluate_mechanism(
            lambda run: _EchoMechanism(tiny_dataset),
            tiny_dataset,
            [(0, 1)],
            num_runs=1,
            metric="jensen_shannon",
        )
        assert candle.mean == pytest.approx(0.0, abs=1e-12)

    def test_factory_called_per_run(self, tiny_dataset):
        calls = []

        def factory(run):
            calls.append(run)
            return _EchoMechanism(tiny_dataset)

        evaluate_mechanism(factory, tiny_dataset, [(0,)], num_runs=3)
        assert calls == [0, 1, 2]


class TestResultContainers:
    def _result(self):
        result = ExperimentResult("figX", "demo", context={"d": 9})
        candle = Candlestick(1, 2, 3, 4, 2.5, 10)
        result.add(MethodResult("PriView", 4, 1.0, "normalized_l2", candle))
        result.add(
            MethodResult("Flat", 4, 1.0, "normalized_l2", None, expected=0.5)
        )
        return result

    def test_row_lookup(self):
        result = self._result()
        assert result.row("PriView", 4, 1.0).candle.mean == 2.5
        with pytest.raises(KeyError):
            result.row("Nope", 4, 1.0)

    def test_headline(self):
        result = self._result()
        assert result.row("PriView", 4, 1.0).headline() == 2.5
        assert result.row("Flat", 4, 1.0).headline() == 0.5

    def test_render_contains_all_methods(self):
        text = self._result().render()
        assert "PriView" in text and "Flat" in text
        assert "figX" in text and "d=9" in text
