"""Smoke tests for the figure drivers at tiny scale.

Each driver runs with drastically reduced parameters; the assertions
check the *shape* relations the paper reports, where a tiny run can
support them, and otherwise that the pipeline produces sane rows.
"""

import pytest

from repro.experiments import figure1, figure2, figure3, figure4, figure5, figure6
from repro.experiments.config import ExperimentScale

TINY = ExperimentScale("tiny", num_queries=4, num_runs=1, max_records=20_000)


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return figure1.run(scale=TINY, ks=(2,), epsilons=(1.0,), seed=1)

    def test_all_methods_present(self, result):
        methods = {r.method for r in result.rows}
        assert {
            "PriView", "Flat", "Direct", "Fourier", "FourierLP", "DataCube",
            "MWEM", "Uniform", "MatrixMechanism",
        } <= methods

    def test_priview_close_to_flat(self, result):
        priview = result.row("PriView", 2, 1.0).headline()
        flat = result.row("Flat", 2, 1.0).headline()
        assert priview < 5 * flat

    def test_flat_beats_direct(self, result):
        assert result.row("Flat", 2, 1.0).headline() < result.row(
            "Direct", 2, 1.0
        ).headline()

    def test_uniform_is_worst_of_core_methods(self, result):
        uniform = result.row("Uniform", 2, 1.0).headline()
        for method in ("PriView", "Flat", "Direct", "Fourier"):
            assert result.row(method, 2, 1.0).headline() < uniform

    def test_datacube_equals_flat_class(self, result):
        """DataCube selects the full table at d=9 (Section 3.4)."""
        datacube = result.row("DataCube", 2, 1.0).headline()
        flat = result.row("Flat", 2, 1.0).headline()
        assert datacube == pytest.approx(flat, rel=0.8)


class TestFigure2:
    @pytest.fixture(scope="class")
    def results(self):
        return figure2.run(
            scale=TINY, datasets=("kosarak",), epsilons=(1.0,), ks=(4,),
            metrics=("normalized_l2",), seed=1,
        )

    def test_priview_beats_direct_and_fourier(self, results):
        (result,) = results
        direct = result.row("Direct", 4, 1.0).headline()
        fourier = result.row("Fourier", 4, 1.0).headline()
        priview = [
            r.headline()
            for r in result.rows
            if r.method.startswith("PriView-") and r.k == 4
        ]
        assert all(p < direct / 10 for p in priview)
        assert all(p < fourier / 10 for p in priview)

    def test_flat_row_is_analytic(self, results):
        (result,) = results
        flat = result.row("Flat", 4, 1.0)
        assert flat.candle is None
        assert flat.expected == 1.0  # capped, d=32 at reduced N

    def test_noise_free_rows_below_noisy(self, results):
        (result,) = results
        noisy = [r for r in result.rows if r.method.startswith("PriView-C")]
        star = [r for r in result.rows if r.method.startswith("PriView*")]
        assert min(s.headline() for s in star) <= min(
            n.headline() for n in noisy
        )


class TestFigure3:
    def test_cme_beats_lp(self):
        (result,) = figure3.run(
            scale=TINY, datasets=("kosarak",), ks=(4,), seed=1
        )
        assert result.row("CME", 4, 1.0).headline() < result.row(
            "LP", 4, 1.0
        ).headline()
        assert result.row("CME*", 4, 1.0).headline() < result.row(
            "CME", 4, 1.0
        ).headline()


class TestFigure4:
    def test_ripple_beats_simple(self):
        (result,) = figure4.run(
            scale=TINY, datasets=("kosarak",), ks=(4,),
            variants=("Simple", "Ripple1"), seed=1,
        )
        assert result.row("Ripple1", 4, 1.0).headline() < result.row(
            "Simple", 4, 1.0
        ).headline()


class TestFigure5:
    def test_rows_for_each_order(self):
        result = figure5.run(scale=TINY, orders=(1, 2), ks=(4,), seed=1)
        assert {r.method for r in result.rows} == {"mc_1", "mc_2"}
        assert all(r.candle.mean < 0.5 for r in result.rows)


class TestFigure6:
    def test_prediction_attached(self):
        result = figure6.run(
            scale=TINY, epsilons=(1.0,), ks=(4,),
            design_params=((8, 2), (10, 2)), seed=1,
        )
        for row in result.rows:
            assert row.expected is not None
            assert row.expected > 0
