"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.chart import render_chart
from repro.experiments.runner import ExperimentResult, MethodResult
from repro.metrics.candlestick import Candlestick


def _result() -> ExperimentResult:
    result = ExperimentResult("figX", "demo")
    result.add(
        MethodResult(
            "PriView", 4, 1.0, "normalized_l2",
            Candlestick(1e-4, 2e-4, 3e-4, 5e-4, 2.5e-4, 20),
        )
    )
    result.add(
        MethodResult(
            "Direct", 4, 1.0, "normalized_l2",
            Candlestick(1e-1, 2e-1, 3e-1, 5e-1, 2.5e-1, 20),
        )
    )
    result.add(
        MethodResult("Flat", 4, 1.0, "normalized_l2", None, expected=1.0)
    )
    return result


class TestRenderChart:
    def test_contains_all_methods(self):
        chart = render_chart(_result())
        assert "PriView" in chart and "Direct" in chart and "Flat" in chart

    def test_log_ordering_of_markers(self):
        chart = render_chart(_result())
        lines = {line.split()[0]: line for line in chart.splitlines()[2:]}
        assert lines["PriView"].index("O") < lines["Direct"].index("O")
        assert lines["Direct"].index("O") <= lines["Flat"].index("O")

    def test_metric_filter(self):
        chart = render_chart(_result(), metric="jensen_shannon")
        assert "no rows" in chart

    def test_epsilon_filter(self):
        chart = render_chart(_result(), epsilon=0.1)
        assert "no rows" in chart

    def test_analytic_rows_have_marker_only(self):
        chart = render_chart(_result())
        flat_line = next(
            line for line in chart.splitlines() if line.startswith("Flat")
        )
        assert "O" in flat_line
        assert "=" not in flat_line.split("|")[1]
