"""Tests for the CoveringDesign container."""

import pytest

from repro.covering.design import CoveringDesign
from repro.exceptions import DesignError


def _pair_design() -> CoveringDesign:
    """A hand-made C_2(3, 4) over 6 points: all pairs covered."""
    return CoveringDesign(
        6, 3, 2, ((0, 1, 2), (3, 4, 5), (0, 3, 4), (1, 2, 5), (0, 1, 5),
                  (2, 3, 4), (0, 2, 4), (1, 3, 5), (0, 2, 5), (1, 3, 4))
    )


class TestConstruction:
    def test_blocks_sorted_and_normalised(self):
        design = CoveringDesign(5, 3, 2, ((4, 0, 2),))
        assert design.blocks == ((0, 2, 4),)

    def test_rejects_duplicate_points(self):
        with pytest.raises(DesignError):
            CoveringDesign(5, 3, 2, ((0, 0, 1),))

    def test_rejects_out_of_range(self):
        with pytest.raises(DesignError):
            CoveringDesign(5, 3, 2, ((0, 1, 5),))

    def test_rejects_wrong_block_size(self):
        with pytest.raises(DesignError):
            CoveringDesign(5, 3, 2, ((0, 1),))

    def test_rejects_block_size_below_strength(self):
        with pytest.raises(DesignError):
            CoveringDesign(5, 1, 2)

    def test_notation(self):
        design = CoveringDesign(6, 3, 2, ((0, 1, 2), (3, 4, 5)))
        assert design.notation == "C_2(3,2)"

    def test_small_universe_allows_short_block(self):
        design = CoveringDesign(3, 8, 2, ((0, 1, 2),))
        assert design.is_covering()


class TestCoverage:
    def test_uncovered_tsets(self):
        design = CoveringDesign(4, 2, 2, ((0, 1), (2, 3)))
        missing = design.uncovered_tsets()
        assert (0, 2) in missing
        assert (0, 1) not in missing
        assert len(missing) == 4

    def test_is_covering(self):
        assert _pair_design().is_covering()

    def test_validate_passes(self):
        _pair_design().validate()

    def test_validate_fails_missing_pairs(self):
        design = CoveringDesign(6, 3, 2, ((0, 1, 2),))
        with pytest.raises(DesignError):
            design.validate()

    def test_validate_fails_missing_point(self):
        # all pairs of {0,1,2} covered, but t=1 coverage of others absent
        design = CoveringDesign(4, 3, 1, ((0, 1, 2),))
        with pytest.raises(DesignError):
            design.validate()

    def test_covers(self):
        design = _pair_design()
        assert design.covers((0, 1))
        assert design.covers((3, 4, 5))
        assert not design.covers((0, 1, 3))

    def test_coverage_multiplicity(self):
        design = CoveringDesign(4, 3, 2, ((0, 1, 2), (1, 2, 3)))
        mult = design.coverage_multiplicity()
        assert mult[(1, 2)] == 2
        assert mult[(0, 1)] == 1
        assert mult[(0, 3)] == 0


class TestRedundancy:
    def test_drop_redundant_removes_duplicates(self):
        base = _pair_design()
        padded = CoveringDesign(
            6, 3, 2, base.blocks + ((0, 1, 2),)
        )
        pruned = padded.drop_redundant()
        assert pruned.num_blocks <= base.num_blocks
        pruned.validate()

    def test_drop_redundant_keeps_covering(self):
        pruned = _pair_design().drop_redundant()
        pruned.validate()


class TestSerialisation:
    def test_round_trip(self):
        design = _pair_design()
        again = CoveringDesign.from_text(design.to_text())
        assert again == design

    def test_from_text_malformed(self):
        with pytest.raises(DesignError):
            CoveringDesign.from_text("not a design")

    def test_from_text_empty(self):
        with pytest.raises(DesignError):
            CoveringDesign.from_text("")
