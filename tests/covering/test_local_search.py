"""Tests for annealing / shrink local search."""

import numpy as np

from repro.covering.design import CoveringDesign
from repro.covering.greedy import greedy_cover
from repro.covering.local_search import anneal_cover, shrink_design


class TestAnnealCover:
    def test_finds_feasible_design(self, rng):
        design = anneal_cover(10, 4, 2, 9, rng=rng, max_steps=40_000)
        assert design is not None
        design.validate()
        assert design.num_blocks == 9

    def test_impossible_target_returns_none(self, rng):
        # 2 blocks of 3 cover at most 6 pairs; C(8,2)=28 needed.
        assert (
            anneal_cover(8, 3, 2, 2, rng=rng, max_steps=5_000, restarts=1)
            is None
        )

    def test_seeded_repair(self, rng):
        """An initial design missing one block repairs quickly."""
        full = greedy_cover(12, 4, 2, rng)
        target = full.num_blocks - 1
        seeded = CoveringDesign(12, 4, 2, full.blocks[:target])
        repaired = anneal_cover(
            12, 4, 2, target, rng=rng, max_steps=60_000, initial=seeded
        )
        if repaired is not None:  # feasibility depends on the greedy start
            repaired.validate()
            assert repaired.num_blocks == target

    def test_respects_initial_block_count_mismatch(self, rng):
        """A mismatched initial design is ignored, not crashed on."""
        other = greedy_cover(10, 4, 2, rng)
        design = anneal_cover(
            10, 4, 2, other.num_blocks + 3, rng=rng, max_steps=20_000,
            initial=other,
        )
        assert design is not None
        assert design.num_blocks == other.num_blocks + 3


class TestShrinkDesign:
    def test_never_invalidates(self, rng):
        start = greedy_cover(12, 4, 2, rng)
        improved = shrink_design(
            start, rng=rng, max_steps=20_000, time_budget=10
        )
        improved.validate()
        assert improved.num_blocks <= start.num_blocks

    def test_respects_time_budget(self, rng):
        import time

        start = greedy_cover(14, 4, 2, rng)
        t0 = time.time()
        shrink_design(start, rng=rng, max_steps=10_000, time_budget=2)
        assert time.time() - t0 < 30
