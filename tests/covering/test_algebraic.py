"""Tests for finite-field arithmetic and algebraic constructions."""

import itertools

import pytest

from repro.covering.algebraic import (
    GaloisField,
    affine_plane_design,
    grid_mols_design,
)
from repro.covering.bounds import schonheim_bound
from repro.exceptions import DesignError


class TestGaloisField:
    @pytest.mark.parametrize("q", [2, 3, 4, 5, 7, 8, 9, 16, 25, 27, 49])
    def test_field_axioms_sampled(self, q):
        gf = GaloisField(q)
        # additive and multiplicative identities
        for a in range(q):
            assert gf.add(a, 0) == a
            assert gf.mul(a, 1) == a
            assert gf.mul(a, 0) == 0
        # every nonzero element has a multiplicative inverse
        for a in range(1, q):
            assert any(gf.mul(a, b) == 1 for b in range(1, q))

    @pytest.mark.parametrize("q", [4, 8, 9])
    def test_distributivity(self, q):
        gf = GaloisField(q)
        for a, b, c in itertools.product(range(q), repeat=3):
            left = gf.mul(a, gf.add(b, c))
            right = gf.add(gf.mul(a, b), gf.mul(a, c))
            assert left == right

    @pytest.mark.parametrize("q", [4, 8])
    def test_characteristic_two_self_inverse(self, q):
        gf = GaloisField(q)
        for a in range(q):
            assert gf.add(a, a) == 0

    def test_unsupported_order(self):
        with pytest.raises(DesignError):
            GaloisField(6)
        with pytest.raises(DesignError):
            GaloisField(12)


class TestAffinePlane:
    @pytest.mark.parametrize("q", [2, 3, 4, 5, 7, 8])
    def test_valid_and_sized(self, q):
        design = affine_plane_design(q)
        design.validate()
        assert design.num_points == q * q
        assert design.block_size == q
        assert design.num_blocks == q * q + q

    def test_every_pair_exactly_once(self):
        """AG(2,q) lines cover each pair exactly once (a 2-design)."""
        design = affine_plane_design(4)
        mult = design.coverage_multiplicity()
        assert set(mult.values()) == {1}

    def test_q8_is_papers_c2_8_72(self):
        design = affine_plane_design(8)
        assert design.notation == "C_2(8,72)"
        assert design.num_blocks == schonheim_bound(64, 8, 2)


class TestGridMols:
    def test_d32_is_papers_c2_8_20(self):
        design = grid_mols_design(8, 4)
        design.validate()
        assert design.notation == "C_2(8,20)"
        assert design.num_blocks == schonheim_bound(32, 8, 2)

    def test_d64_matches_affine(self):
        design = grid_mols_design(8, 8)
        design.validate()
        assert design.num_blocks == 72

    @pytest.mark.parametrize("l,g", [(4, 2), (6, 3), (10, 5), (9, 3)])
    def test_other_parameters(self, l, g):
        design = grid_mols_design(l, g)
        design.validate()
        assert design.num_points == g * l
        assert design.num_blocks == g * g + g

    def test_requires_divisibility(self):
        with pytest.raises(DesignError):
            grid_mols_design(7, 4)
