"""Tests for the design repository / construction front-end."""

import pytest

from repro.covering.design import CoveringDesign
from repro.covering.repository import (
    algebraic_design,
    best_design,
    construct_design,
    design_filename,
    load_bundled_design,
    save_design,
)
from repro.exceptions import DesignError


class TestAlgebraicDispatch:
    def test_affine_parameters(self):
        design = algebraic_design(64, 8, 2)
        assert design is not None and design.num_blocks == 72

    def test_grid_parameters(self):
        design = algebraic_design(32, 8, 2)
        assert design is not None and design.num_blocks == 20

    def test_no_construction_for_t3(self):
        assert algebraic_design(32, 8, 3) is None

    def test_no_construction_for_awkward_d(self):
        assert algebraic_design(45, 8, 2) is None


class TestBestDesign:
    def test_paper_kosarak_design(self):
        design = best_design(32, 8, 2)
        design.validate()
        assert design.num_blocks == 20

    def test_mchain_design(self):
        design = best_design(64, 8, 2)
        design.validate()
        assert design.num_blocks == 72

    def test_msnbc_design_from_bundle(self):
        """The paper's C_2(6,3) for MSNBC (d=9)."""
        design = best_design(9, 6, 2)
        design.validate()
        assert design.num_blocks == 3

    def test_bundled_t3_design(self):
        design = best_design(32, 8, 3)
        design.validate()
        assert design.strength == 3

    def test_cached(self):
        assert best_design(16, 4, 2) is best_design(16, 4, 2)


class TestConstructDesign:
    def test_trivial_single_block(self):
        design = construct_design(5, 8, 2)
        design.validate()
        assert design.num_blocks == 1

    def test_greedy_fallback(self, rng):
        design = construct_design(11, 4, 2, rng=rng)
        design.validate()

    def test_effort_never_worsens(self, rng):
        base = construct_design(12, 4, 2, rng=rng, effort=0)
        improved = construct_design(12, 4, 2, rng=rng, effort=1)
        improved.validate()
        assert improved.num_blocks <= base.num_blocks + 1


class TestBundleRoundTrip:
    def test_save_and_load(self, tmp_path):
        design = construct_design(10, 4, 2)
        path = save_design(design, tmp_path)
        assert path.name == design_filename(10, 4, 2)
        text = path.read_text()
        again = CoveringDesign.from_text(text)
        assert again == design

    def test_load_missing_returns_none(self):
        assert load_bundled_design(99, 7, 2) is None

    def test_mismatched_bundle_rejected(self, tmp_path, monkeypatch):
        design = construct_design(10, 4, 2)
        bad_name = tmp_path / design_filename(11, 4, 2)
        bad_name.write_text(design.to_text())
        monkeypatch.setattr(
            "repro.covering.repository._data_dir", lambda: tmp_path
        )
        with pytest.raises(DesignError):
            load_bundled_design(11, 4, 2)
