"""Tests for greedy covering-design construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covering.bounds import schonheim_bound
from repro.covering.greedy import greedy_cover
from repro.exceptions import DesignError


class TestGreedyCover:
    def test_produces_valid_covering(self, rng):
        design = greedy_cover(12, 4, 2, rng)
        design.validate()

    def test_strength_three(self, rng):
        design = greedy_cover(10, 5, 3, rng)
        design.validate()
        assert design.strength == 3

    def test_near_bound_for_easy_parameters(self, rng):
        design = greedy_cover(16, 4, 2, rng)
        bound = schonheim_bound(16, 4, 2)
        assert design.num_blocks <= 2 * bound

    def test_single_block_when_points_fit(self, rng):
        design = greedy_cover(4, 4, 2, rng)
        assert design.num_blocks == 1

    def test_rejects_too_few_points(self, rng):
        with pytest.raises(DesignError):
            greedy_cover(3, 4, 2, rng)

    def test_strength_one_covers_all_points(self, rng):
        design = greedy_cover(13, 4, 1, rng)
        design.validate()
        covered = {p for b in design.blocks for p in b}
        assert covered == set(range(13))

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_seeds_always_valid(self, seed):
        design = greedy_cover(10, 4, 2, np.random.default_rng(seed))
        design.validate()
