"""Integrity tests for the covering designs shipped with the package."""

import pathlib

import pytest

from repro.covering.design import CoveringDesign
from repro.covering.bounds import schonheim_bound
from repro.covering.repository import _data_dir

BUNDLED = sorted(pathlib.Path(_data_dir()).glob("cover_*.txt"))


@pytest.mark.parametrize("path", BUNDLED, ids=lambda p: p.stem)
def test_bundled_design_is_valid(path):
    design = CoveringDesign.from_text(path.read_text())
    design.validate()


@pytest.mark.parametrize("path", BUNDLED, ids=lambda p: p.stem)
def test_bundled_design_filename_matches_parameters(path):
    design = CoveringDesign.from_text(path.read_text())
    expected = (
        f"cover_d{design.num_points}_l{design.block_size}"
        f"_t{design.strength}.txt"
    )
    assert path.name == expected


@pytest.mark.parametrize("path", BUNDLED, ids=lambda p: p.stem)
def test_bundled_design_not_below_bound(path):
    """No bundled design can beat the Schönheim lower bound."""
    design = CoveringDesign.from_text(path.read_text())
    bound = schonheim_bound(
        design.num_points, design.block_size, design.strength
    )
    assert design.num_blocks >= bound


def test_experiment_designs_bundled():
    """Every design the figure drivers rely on must be present or
    algebraically constructible."""
    names = {p.name for p in BUNDLED}
    required = [
        "cover_d9_l6_t2.txt",  # the paper's MSNBC C_2(6,3)
        "cover_d32_l8_t3.txt",
        "cover_d45_l8_t2.txt",
        "cover_d45_l8_t3.txt",
    ]
    for name in required:
        assert name in names, f"missing bundled design {name}"
