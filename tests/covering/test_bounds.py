"""Tests for covering-number lower bounds."""

import math

import pytest

from repro.covering.bounds import pair_counting_bound, schonheim_bound
from repro.exceptions import DesignError


class TestSchonheimBound:
    def test_t1_is_ceiling(self):
        assert schonheim_bound(10, 3, 1) == 4

    def test_paper_optimal_designs_meet_bound(self):
        """The paper's C_2(8,20) and C_2(8,72) are optimal."""
        assert schonheim_bound(32, 8, 2) == 20
        assert schonheim_bound(64, 8, 2) == 72

    def test_known_small_values(self):
        # C(7,3,2) = 7 (Fano plane) and the bound is tight there.
        assert schonheim_bound(7, 3, 2) == 7
        # C(9,6,2): paper's MSNBC design uses 3 blocks.
        assert schonheim_bound(9, 6, 2) == 3

    def test_bound_at_full_block(self):
        assert schonheim_bound(8, 8, 2) == 1

    def test_monotone_in_strength(self):
        for t in range(1, 4):
            assert schonheim_bound(20, 6, t) <= schonheim_bound(20, 6, t + 1)

    def test_invalid_parameters(self):
        with pytest.raises(DesignError):
            schonheim_bound(5, 6, 2)
        with pytest.raises(DesignError):
            schonheim_bound(6, 3, 0)


class TestPairCountingBound:
    def test_formula(self):
        assert pair_counting_bound(10, 4) == math.ceil(45 / 6)

    def test_schonheim_at_least_as_strong(self):
        for v, l in [(16, 4), (32, 8), (45, 8), (20, 5)]:
            assert schonheim_bound(v, l, 2) >= pair_counting_bound(v, l)

    def test_invalid(self):
        with pytest.raises(DesignError):
            pair_counting_bound(3, 1)
