"""Cross-cutting property-based tests (hypothesis).

Module-level invariants live next to their modules; this file holds
the *pipeline-level* properties that tie several components together:

* post-processing (consistency, non-negativity) never changes what a
  noise-free pipeline publishes;
* the synopsis answers are self-consistent across arities;
* the privacy mechanism's noise is independent of the data values
  (shift equivariance).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import make_consistent
from repro.core.priview import PriView
from repro.covering.design import CoveringDesign
from repro.marginals.dataset import BinaryDataset
from repro.marginals.table import MarginalTable

DESIGN = CoveringDesign(
    6, 3, 1, ((0, 1, 2), (2, 3, 4), (3, 4, 5), (0, 2, 4), (1, 3, 5))
)


def _dataset(seed: int, n: int = 800) -> BinaryDataset:
    rng = np.random.default_rng(seed)
    probs = rng.random(6)
    return BinaryDataset(
        (rng.random((n, 6)) < probs).astype(np.uint8)
    )


class TestNoiseFreeFixpoint:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_pipeline_preserves_exact_views(self, seed):
        """With epsilon=inf the full pipeline is the identity: exact
        views are consistent and non-negative already."""
        dataset = _dataset(seed)
        synopsis = PriView(float("inf"), design=DESIGN, seed=0).fit(dataset)
        for view, block in zip(synopsis.views, DESIGN.blocks):
            assert np.allclose(
                view.counts, dataset.marginal(block).counts, atol=1e-6
            )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_noise_free_covered_queries_exact(self, seed):
        dataset = _dataset(seed)
        synopsis = PriView(float("inf"), design=DESIGN, seed=0).fit(dataset)
        for block in DESIGN.blocks:
            sub = block[:2]
            assert np.allclose(
                synopsis.marginal(sub).counts,
                dataset.marginal(sub).counts,
                atol=1e-6,
            )


class TestSynopsisSelfConsistency:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_reconstructions_project_consistently(self, seed):
        """T_A reconstructed for A then projected to B subset of A
        matches the direct answer for B when B is covered."""
        dataset = _dataset(seed)
        synopsis = PriView(1.0, design=DESIGN, seed=seed).fit(dataset)
        big = synopsis.marginal((0, 1, 2))  # covered by a view
        small = synopsis.marginal((0, 1))
        assert np.allclose(big.project((0, 1)).counts, small.counts, atol=1e-6)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_all_answers_share_the_total(self, seed):
        dataset = _dataset(seed)
        synopsis = PriView(1.0, design=DESIGN, seed=seed).fit(dataset)
        totals = [
            synopsis.marginal(attrs).total()
            for attrs in [(0, 1), (2, 5), (0, 3, 5)]
        ]
        assert np.allclose(totals, totals[0], rtol=1e-6)


class TestMechanismEquivariance:
    @given(seed=st.integers(0, 10_000), shift=st.integers(1, 50))
    @settings(max_examples=10, deadline=None)
    def test_laplace_noise_is_data_independent(self, seed, shift):
        """Noisy(counts + shift) == Noisy(counts) + shift under the
        same seed: the mechanism adds noise, never inspects values."""
        from repro.mechanisms.laplace import noisy_counts

        counts = np.arange(8, dtype=np.float64)
        a = noisy_counts(counts, 1.0, rng=np.random.default_rng(seed))
        b = noisy_counts(
            counts + shift, 1.0, rng=np.random.default_rng(seed)
        )
        assert np.allclose(b - a, shift)


class TestConsistencyConservation:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_grand_total_is_mean_of_view_totals(self, seed):
        """Overall consistency must not invent or destroy mass: the
        common total equals the average of the inputs' totals."""
        rng = np.random.default_rng(seed)
        views = [
            MarginalTable(attrs, rng.random(8) * 100)
            for attrs in [(0, 1, 2), (2, 3, 4), (1, 3, 5)]
        ]
        mean_total = float(np.mean([v.total() for v in views]))
        make_consistent(views)
        for view in views:
            assert view.total() == pytest.approx(mean_total, rel=1e-9)
