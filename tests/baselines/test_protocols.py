"""Mechanism / MarginalSource protocol conformance.

Everything that claims to be a mechanism (PriView, every baseline)
must satisfy the structural protocols in ``repro.baselines.base``, so
experiment drivers and ``repro.serve`` host them interchangeably
without isinstance special-cases.
"""

import numpy as np
import pytest

from repro import MarginalSource, Mechanism, PriView
from repro.baselines import (
    DataCubeMethod,
    DirectMethod,
    FlatMethod,
    FourierLPMethod,
    FourierMethod,
    LearningMethod,
    MatrixMechanism,
    MWEMMethod,
    UniformMethod,
)
from repro.exceptions import ReconstructionError
from repro.kernels import PackedDataset
from repro.serve import PATH_SOLVED, QueryEngine, serve_source, serve_synopsis


def _mechanisms():
    return [
        PriView(1.0, seed=0),
        UniformMethod(1.0),
        FlatMethod(1.0, seed=0),
        DirectMethod(1.0, k=2, seed=0),
        FourierMethod(1.0, k_max=2, seed=0),
        FourierLPMethod(1.0, k_max=2, seed=0),
        MWEMMethod(1.0, k=2, seed=0),
        MatrixMechanism(1.0, k=2, seed=0),
        LearningMethod(1.0, k=2, seed=0),
        DataCubeMethod(1.0, k=2, seed=0),
    ]


class TestMechanismProtocol:
    @pytest.mark.parametrize(
        "mechanism", _mechanisms(), ids=lambda m: type(m).__name__
    )
    def test_conforms(self, mechanism):
        assert isinstance(mechanism, Mechanism)
        assert isinstance(mechanism.name, str) and mechanism.name
        assert mechanism.epsilon == 1.0

    def test_fit_returns_marginal_source(self, tiny_dataset):
        for mechanism in [UniformMethod(1.0), PriView(1.0, seed=0)]:
            fitted = mechanism.fit(tiny_dataset)
            assert isinstance(fitted, MarginalSource)
            table = fitted.marginal((0, 1))
            assert table.attrs == (0, 1)

    def test_datasets_are_marginal_sources(self, tiny_dataset):
        assert isinstance(tiny_dataset, MarginalSource)
        assert isinstance(
            PackedDataset.from_dataset(tiny_dataset), MarginalSource
        )

    def test_public_shape_properties(self, tiny_dataset):
        mechanism = UniformMethod(1.0)
        with pytest.raises(ReconstructionError):
            mechanism.num_attributes
        mechanism.fit(tiny_dataset)
        assert mechanism.num_attributes == tiny_dataset.num_attributes
        assert mechanism.num_records == tiny_dataset.num_records
        assert mechanism.fitted


class TestServeAnyMechanism:
    def test_engine_hosts_fitted_baseline(self, tiny_dataset):
        mechanism = UniformMethod(1.0).fit(tiny_dataset)
        with QueryEngine(mechanism) as engine:
            answer = engine.answer((0, 2))
            assert answer.path == PATH_SOLVED
            np.testing.assert_allclose(
                answer.table.counts, mechanism.marginal((0, 2)).counts
            )
            again = engine.answer((2, 0))
            assert again.cached
            stats = engine.stats()
        assert stats["synopsis"]["name"] == mechanism.name
        assert stats["synopsis"]["views"] == 0
        assert "index_cache" in stats["kernels"]

    def test_server_hosts_fitted_baseline(self, tiny_dataset):
        mechanism = UniformMethod(1.0).fit(tiny_dataset)
        with serve_source(mechanism, port=0) as server:
            import json
            import urllib.request

            with urllib.request.urlopen(
                f"{server.url}/healthz", timeout=10
            ) as response:
                payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert payload["design"] is None
        assert payload["num_attributes"] == tiny_dataset.num_attributes

    def test_serve_synopsis_deprecated(self, tiny_dataset):
        synopsis = PriView(
            float("inf"), view_width=3, strength=1, seed=0
        ).fit(tiny_dataset)
        with pytest.warns(DeprecationWarning, match="serve_source"):
            server = serve_synopsis(synopsis, port=0)
        server.engine.close()
