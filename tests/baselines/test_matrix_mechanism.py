"""Tests for the matrix mechanism (Section 3.5)."""

import math

import numpy as np
import pytest

from repro.baselines.matrix_mechanism import (
    MatrixMechanism,
    expected_per_marginal_ese,
    expected_total_squared_error,
    marginal_workload_matrix,
    strategy_matrix,
)
from repro.exceptions import ReconstructionError


class TestWorkloadMatrix:
    def test_shape(self):
        w = marginal_workload_matrix(4, 2)
        assert w.shape == (math.comb(4, 2) * 4, 16)

    def test_rows_are_marginal_cells(self, tiny_dataset):
        from repro.marginals.contingency import FullContingencyTable

        w = marginal_workload_matrix(6, 2)
        full = FullContingencyTable.from_dataset(tiny_dataset)
        answers = w @ full.counts
        # first block of rows = marginal over attrs (0,1)
        assert np.allclose(
            answers[:4], tiny_dataset.marginal((0, 1)).counts
        )

    def test_binary_entries(self):
        w = marginal_workload_matrix(3, 2)
        assert set(np.unique(w)) <= {0.0, 1.0}


class TestStrategies:
    def test_identity_error_equals_flat(self):
        """Strategy = identity reproduces the Flat method's ESE."""
        d, k = 4, 2
        w = marginal_workload_matrix(d, k)
        a = strategy_matrix("identity", d, k, w)
        total = expected_total_squared_error(w, a, 1.0)
        per_marginal = total / math.comb(d, k)
        assert per_marginal == pytest.approx(2.0 * 2**d)

    def test_workload_strategy_at_most_direct(self):
        """Measuring the workload itself: the pseudo-inverse averages
        duplicated information, so it cannot exceed Direct's ESE."""
        from repro.baselines.direct import direct_expected_squared_error

        d, k = 4, 2
        w = marginal_workload_matrix(d, k)
        a = strategy_matrix("workload", d, k, w)
        per_marginal = expected_total_squared_error(w, a, 1.0) / math.comb(d, k)
        assert per_marginal <= direct_expected_squared_error(d, k, 1.0) * 1.01

    def test_eigen_between_flat_and_direct_for_d9(self):
        """The Figure 1 observation."""
        from repro.baselines.direct import direct_expected_squared_error
        from repro.baselines.flat import flat_expected_squared_error

        d, k = 9, 2
        eigen = expected_per_marginal_ese(d, k, 1.0, strategy="eigen")
        assert eigen < direct_expected_squared_error(d, k, 1.0)
        assert eigen > 0

    def test_unknown_strategy(self):
        with pytest.raises(ReconstructionError):
            strategy_matrix("magic", 3, 2)


class TestMechanism:
    def test_noise_free_exact(self, tiny_dataset):
        mech = MatrixMechanism(
            float("inf"), 2, strategy="identity", seed=0
        ).fit(tiny_dataset)
        assert np.allclose(
            mech.marginal((0, 1)).counts,
            tiny_dataset.marginal((0, 1)).counts,
            atol=1e-6,
        )

    def test_noisy_release_finite(self, tiny_dataset):
        mech = MatrixMechanism(1.0, 2, strategy="eigen", seed=0).fit(
            tiny_dataset
        )
        table = mech.marginal((2, 4))
        assert np.all(np.isfinite(table.counts))
