"""Tests for the learning-based baseline (Section 3.7)."""

import numpy as np
import pytest

from repro.baselines.learning import LearningMethod, degree_for_gamma


class TestDegreeRule:
    def test_monotone_in_one_over_gamma(self):
        degrees = [degree_for_gamma(6, g) for g in (0.5, 0.25, 0.125)]
        assert degrees == sorted(degrees)

    def test_clamped_to_k(self):
        assert degree_for_gamma(2, 1e-9) == 2

    def test_at_least_one(self):
        assert degree_for_gamma(4, 0.99) == 1


class TestLearningMethod:
    def test_full_degree_equals_fourier(self, tiny_dataset):
        """With degree k, truncation vanishes: exact without noise."""
        mech = LearningMethod(float("inf"), 2, gamma=1e-6, seed=0).fit(
            tiny_dataset
        )
        assert mech.degree == 2
        assert np.allclose(
            mech.marginal((0, 1)).counts, tiny_dataset.marginal((0, 1)).counts
        )

    def test_truncation_error_without_noise(self, small_dataset):
        """Low degree leaves approximation error even with eps=inf —
        the paper's green-star observation."""
        mech = LearningMethod(float("inf"), 4, gamma=0.5, seed=0).fit(
            small_dataset
        )
        assert mech.degree < 4
        est = mech.marginal((0, 1, 2, 3))
        truth = small_dataset.marginal((0, 1, 2, 3))
        assert not np.allclose(est.counts, truth.counts, atol=1.0)

    def test_smaller_gamma_less_approximation_error(self, small_dataset):
        errs = []
        for gamma in (0.5, 0.125):
            mech = LearningMethod(
                float("inf"), 4, gamma=gamma, seed=0
            ).fit(small_dataset)
            truth = small_dataset.marginal((0, 1, 2, 3))
            est = mech.marginal((0, 1, 2, 3))
            errs.append(np.linalg.norm(est.counts - truth.counts))
        assert errs[1] <= errs[0]

    def test_total_preserved_by_truncation(self, small_dataset):
        """Weight-0 coefficient survives truncation: totals match."""
        mech = LearningMethod(float("inf"), 4, gamma=0.5, seed=0).fit(
            small_dataset
        )
        est = mech.marginal((0, 1, 2, 3))
        assert est.total() == pytest.approx(small_dataset.num_records)

    def test_noisy_variant_runs(self, tiny_dataset):
        mech = LearningMethod(1.0, 3, gamma=0.25, seed=0).fit(tiny_dataset)
        table = mech.marginal((0, 1, 2))
        assert np.all(np.isfinite(table.counts))

    def test_query_cached(self, tiny_dataset):
        mech = LearningMethod(1.0, 2, gamma=0.5, seed=0).fit(tiny_dataset)
        a = mech.marginal((0, 1))
        b = mech.marginal((0, 1))
        assert np.array_equal(a.counts, b.counts)
