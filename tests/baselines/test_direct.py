"""Tests for the Direct method (Section 3.2)."""

import numpy as np
import pytest

from repro.baselines.direct import DirectMethod, direct_expected_squared_error


class TestDirectMethod:
    def test_noise_free_exact(self, tiny_dataset):
        mech = DirectMethod(float("inf"), 2, nonnegativity="none", seed=0).fit(
            tiny_dataset
        )
        assert np.allclose(
            mech.marginal((1, 4)).counts, tiny_dataset.marginal((1, 4)).counts
        )

    def test_wrong_arity_rejected(self, tiny_dataset):
        mech = DirectMethod(1.0, 3, seed=0).fit(tiny_dataset)
        with pytest.raises(ValueError):
            mech.marginal((0, 1))

    def test_answers_cached_per_marginal(self, tiny_dataset):
        """Re-asking returns the same published table, fresh noise is
        not drawn (the release is one-shot)."""
        mech = DirectMethod(1.0, 2, seed=0).fit(tiny_dataset)
        first = mech.marginal((0, 1))
        second = mech.marginal((0, 1))
        assert np.array_equal(first.counts, second.counts)

    def test_returned_copy_isolated(self, tiny_dataset):
        mech = DirectMethod(1.0, 2, seed=0).fit(tiny_dataset)
        table = mech.marginal((0, 1))
        table.counts[0] += 100
        assert mech.marginal((0, 1)).counts[0] != table.counts[0]

    def test_noise_scale_matches_equation4(self, tiny_dataset):
        errors = []
        for seed in range(40):
            mech = DirectMethod(
                1.0, 2, nonnegativity="none", seed=seed
            ).fit(tiny_dataset)
            diff = (
                mech.marginal((0, 1)).counts
                - tiny_dataset.marginal((0, 1)).counts
            )
            errors.append((diff**2).sum())
        expected = direct_expected_squared_error(6, 2, 1.0)
        assert np.mean(errors) == pytest.approx(expected, rel=0.5)


class TestAnalyticDirect:
    def test_equation4(self):
        # 2**k * C(d,k)**2 * V_u
        assert direct_expected_squared_error(6, 2, 1.0) == 4 * 15**2 * 2.0

    def test_crossover_with_flat(self):
        from repro.baselines.flat import flat_expected_squared_error

        # paper: Direct beats Flat for k=2 from d=16 on
        assert direct_expected_squared_error(
            16, 2, 1.0
        ) < flat_expected_squared_error(16, 1.0)
        assert direct_expected_squared_error(
            15, 2, 1.0
        ) > flat_expected_squared_error(15, 1.0)
