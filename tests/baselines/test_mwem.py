"""Tests for the MWEM baseline (Section 3.6)."""

import numpy as np
import pytest

from repro.baselines.mwem import MWEMMethod, default_rounds


class TestDefaultRounds:
    def test_paper_value_for_d9(self):
        # ceil(4 ln 9) + 2 = 9 + 2 = 11; the paper quotes 15 for its
        # setting (which matches d >= 26); we simply check the formula.
        assert default_rounds(9) == int(np.ceil(4 * np.log(9))) + 2

    def test_grows_with_d(self):
        assert default_rounds(16) >= default_rounds(8)


class TestMWEM:
    def test_total_mass_preserved(self, tiny_dataset):
        mech = MWEMMethod(1.0, 2, rounds=4, replays=5, seed=0).fit(tiny_dataset)
        table = mech.marginal((0, 1))
        assert table.total() == pytest.approx(tiny_dataset.num_records, rel=0.01)

    def test_distribution_nonnegative(self, tiny_dataset):
        mech = MWEMMethod(1.0, 2, rounds=4, replays=5, seed=0).fit(tiny_dataset)
        assert mech._table.counts.min() >= 0.0

    def test_beats_uniform_with_generous_budget(self, small_dataset):
        from repro.metrics.l2 import normalized_l2_error
        from repro.marginals.table import MarginalTable

        mech = MWEMMethod(20.0, 2, rounds=8, replays=20, seed=1).fit(
            small_dataset
        )
        n = small_dataset.num_records
        queries = [(0, 1), (2, 5), (3, 8), (4, 9), (6, 7)]
        mwem_err = np.mean(
            [
                normalized_l2_error(
                    mech.marginal(q), small_dataset.marginal(q), n
                )
                for q in queries
            ]
        )
        uniform_err = np.mean(
            [
                normalized_l2_error(
                    MarginalTable.uniform(q, n), small_dataset.marginal(q), n
                )
                for q in queries
            ]
        )
        assert mwem_err < uniform_err

    def test_basic_variant_runs(self, tiny_dataset):
        mech = MWEMMethod(
            1.0, 2, rounds=3, enhanced=False, seed=0
        ).fit(tiny_dataset)
        table = mech.marginal((0, 1))
        assert np.all(np.isfinite(table.counts))

    def test_answers_any_marginal_of_the_domain(self, tiny_dataset):
        """MWEM keeps a full distribution: any arity is answerable."""
        mech = MWEMMethod(1.0, 2, rounds=3, replays=5, seed=0).fit(tiny_dataset)
        assert mech.marginal((0, 1, 2, 3)).arity == 4

    def test_noise_free_improves_on_start(self, tiny_dataset):
        """With eps=inf selection is exact argmax and answers exact."""
        mech = MWEMMethod(
            float("inf"), 2, rounds=5, replays=10, seed=0
        ).fit(tiny_dataset)
        truth = tiny_dataset.marginal((0, 1))
        estimate = mech.marginal((0, 1))
        uniform = np.full(4, tiny_dataset.num_records / 4)
        assert np.linalg.norm(estimate.counts - truth.counts) < np.linalg.norm(
            uniform - truth.counts
        )
