"""Tests for the mechanism protocol and the Uniform baseline."""

import numpy as np
import pytest

from repro.baselines.uniform import UniformMethod
from repro.exceptions import PrivacyBudgetError, ReconstructionError


class TestProtocol:
    def test_marginal_before_fit_rejected(self):
        with pytest.raises(ReconstructionError):
            UniformMethod(1.0).marginal((0,))

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            UniformMethod(-1.0)

    def test_fit_returns_self(self, tiny_dataset):
        mech = UniformMethod(1.0, seed=0)
        assert mech.fit(tiny_dataset) is mech


class TestUniform:
    def test_uniform_cells(self, tiny_dataset):
        mech = UniformMethod(1.0, seed=0).fit(tiny_dataset)
        table = mech.marginal((0, 1, 2))
        assert np.allclose(table.counts, table.counts[0])

    def test_total_close_to_n(self, tiny_dataset):
        mech = UniformMethod(1.0, seed=0).fit(tiny_dataset)
        assert mech.marginal((0,)).total() == pytest.approx(500, abs=50)

    def test_attrs_sorted(self, tiny_dataset):
        mech = UniformMethod(1.0, seed=0).fit(tiny_dataset)
        assert mech.marginal((3, 1)).attrs == (1, 3)

    def test_noise_free(self, tiny_dataset):
        mech = UniformMethod(float("inf"), seed=0).fit(tiny_dataset)
        assert mech.marginal((0,)).total() == pytest.approx(500.0)
