"""Tests for the Flat method (Section 3.1)."""

import numpy as np
import pytest

from repro.baselines.flat import (
    FlatMethod,
    flat_expected_normalized_l2,
    flat_expected_squared_error,
)
from repro.exceptions import DimensionError
from repro.marginals.dataset import BinaryDataset


class TestFlatMethod:
    def test_noise_free_exact(self, tiny_dataset):
        mech = FlatMethod(float("inf"), seed=0).fit(tiny_dataset)
        for attrs in [(0,), (1, 3), (0, 2, 4)]:
            assert np.allclose(
                mech.marginal(attrs).counts,
                tiny_dataset.marginal(attrs).counts,
            )

    def test_marginals_mutually_consistent(self, tiny_dataset):
        """All answers come from one table, hence are consistent."""
        mech = FlatMethod(1.0, seed=0).fit(tiny_dataset)
        big = mech.marginal((0, 1, 2))
        small = mech.marginal((0, 1))
        assert np.allclose(big.project((0, 1)).counts, small.counts)

    def test_error_grows_with_marginal_size(self, tiny_dataset):
        """ESE is 2**d V_u regardless of k, so the normalized error of
        the k-way table is flat in k; verify the noisy answer differs
        from truth by roughly the analytic prediction."""
        errors = []
        for seed in range(30):
            mech = FlatMethod(1.0, seed=seed).fit(tiny_dataset)
            err = mech.marginal((0, 1)).counts - tiny_dataset.marginal(
                (0, 1)
            ).counts
            errors.append((err**2).sum())
        expected = flat_expected_squared_error(6, 1.0)
        assert np.mean(errors) == pytest.approx(expected, rel=0.5)

    def test_refuses_large_d(self):
        ds = BinaryDataset(np.zeros((3, 30), dtype=np.uint8))
        with pytest.raises(DimensionError):
            FlatMethod(1.0).fit(ds)

    def test_nonnegativity_option(self, tiny_dataset):
        mech = FlatMethod(0.1, nonnegativity="simple", seed=0).fit(tiny_dataset)
        assert mech.marginal((0, 1, 2)).counts.min() >= 0.0


class TestAnalyticFlat:
    def test_equation3(self):
        assert flat_expected_squared_error(10, 1.0) == 2**10 * 2.0

    def test_normalized_cap(self):
        assert flat_expected_normalized_l2(45, 0.1, 647_377) == 1.0

    def test_normalized_uncapped_when_small(self):
        value = flat_expected_normalized_l2(10, 1.0, 1_000_000)
        assert value == pytest.approx(np.sqrt(2**11) / 1e6)

    def test_cap_none(self):
        value = flat_expected_normalized_l2(45, 0.1, 1000, cap=None)
        assert value > 1.0
