"""Tests for the Fourier method (Section 3.3)."""

import math

import numpy as np
import pytest

from repro.baselines.fourier import (
    FourierLPMethod,
    FourierMethod,
    fourier_coefficient_count,
    fourier_expected_squared_error,
    walsh_hadamard,
)
from repro.exceptions import DimensionError, ReconstructionError


class TestWalshHadamard:
    def test_involution(self, rng):
        v = rng.random(32)
        assert np.allclose(walsh_hadamard(walsh_hadamard(v)) / 32, v)

    def test_coefficient_zero_is_sum(self, rng):
        v = rng.random(16)
        assert walsh_hadamard(v)[0] == pytest.approx(v.sum())

    def test_known_transform(self):
        assert np.allclose(walsh_hadamard(np.array([1.0, 0.0])), [1.0, 1.0])
        assert np.allclose(walsh_hadamard(np.array([0.0, 1.0])), [1.0, -1.0])

    def test_input_not_modified(self):
        v = np.array([1.0, 2.0])
        walsh_hadamard(v)
        assert np.array_equal(v, [1.0, 2.0])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(DimensionError):
            walsh_hadamard(np.zeros(3))

    def test_parseval(self, rng):
        v = rng.random(64)
        transformed = walsh_hadamard(v)
        assert (transformed**2).sum() == pytest.approx(64 * (v**2).sum())


class TestCoefficientCount:
    def test_small(self):
        assert fourier_coefficient_count(4, 2) == 1 + 4 + 6

    def test_full_weight(self):
        assert fourier_coefficient_count(5, 5) == 32


class TestFourierMethod:
    def test_noise_free_exact(self, tiny_dataset):
        mech = FourierMethod(
            float("inf"), 3, nonnegativity="none", seed=0
        ).fit(tiny_dataset)
        assert np.allclose(
            mech.marginal((0, 2, 4)).counts,
            tiny_dataset.marginal((0, 2, 4)).counts,
        )

    def test_arity_beyond_kmax_rejected(self, tiny_dataset):
        mech = FourierMethod(1.0, 2, seed=0).fit(tiny_dataset)
        with pytest.raises(ReconstructionError):
            mech.marginal((0, 1, 2))

    def test_lower_arities_answerable(self, tiny_dataset):
        """One release answers every arity <= k_max, unlike Direct."""
        mech = FourierMethod(1.0, 3, seed=0).fit(tiny_dataset)
        for attrs in [(0,), (1, 2), (0, 1, 2)]:
            assert mech.marginal(attrs).arity == len(attrs)

    def test_repeat_query_cached(self, tiny_dataset):
        mech = FourierMethod(1.0, 2, seed=0).fit(tiny_dataset)
        a = mech.marginal((0, 3))
        b = mech.marginal((0, 3))
        assert np.array_equal(a.counts, b.counts)

    def test_ese_factor_2k_below_direct(self, tiny_dataset):
        """Empirically confirm the Section 3.3 claim on same-k release.

        Release only weight<=k coefficients vs Direct's C(d,k) tables:
        Fourier's ESE should be ~2**k times smaller per marginal when
        m ~ C(d,k).  We check the analytic formulas instead of sampling
        (the sampled check lives in the benchmark suite).
        """
        from repro.baselines.direct import direct_expected_squared_error

        d, k = 20, 3
        fourier = fourier_expected_squared_error(d, k, epsilon=1.0)
        direct = direct_expected_squared_error(d, k, 1.0)
        ratio = direct / fourier
        m = fourier_coefficient_count(d, k)
        assert ratio == pytest.approx(
            2**k * math.comb(d, k) ** 2 / m**2, rel=1e-9
        )

    def test_empirical_noise_variance(self, tiny_dataset):
        errors = []
        for seed in range(40):
            mech = FourierMethod(
                1.0, 2, nonnegativity="none", seed=seed
            ).fit(tiny_dataset)
            diff = (
                mech.marginal((0, 1)).counts
                - tiny_dataset.marginal((0, 1)).counts
            )
            errors.append((diff**2).sum())
        expected = fourier_expected_squared_error(6, 2, epsilon=1.0)
        assert np.mean(errors) == pytest.approx(expected, rel=0.5)


class TestFourierLP:
    def test_nonnegative_consistent_table(self, tiny_dataset):
        mech = FourierLPMethod(1.0, 2, seed=0).fit(tiny_dataset)
        table = mech.marginal((0, 1))
        assert table.counts.min() >= -1e-9
        other = mech.marginal((0,))
        assert np.allclose(table.project((0,)).counts, other.counts)

    def test_noise_free_close_to_truth(self, tiny_dataset):
        mech = FourierLPMethod(float("inf"), 2, seed=0).fit(tiny_dataset)
        table = mech.marginal((0, 1))
        truth = tiny_dataset.marginal((0, 1))
        # LP reconstructs a table matching all weight<=2 coefficients;
        # the pairwise marginal is determined by those coefficients.
        assert np.allclose(table.counts, truth.counts, atol=1e-5)

    def test_arity_beyond_kmax_rejected(self, tiny_dataset):
        mech = FourierLPMethod(1.0, 2, seed=0).fit(tiny_dataset)
        with pytest.raises(ReconstructionError):
            mech.marginal((0, 1, 2))
