"""Tests for the DataCube baseline (Section 3.4)."""

import numpy as np
import pytest

from repro.baselines.datacube import (
    DataCubeMethod,
    MAX_LATTICE_DIMENSIONS,
    select_cuboids,
)
from repro.exceptions import DimensionError
from repro.marginals.dataset import BinaryDataset


class TestSelection:
    def test_low_dimensional_binary_chooses_flat(self):
        """The paper's Section 3.4 observation: at d=9 the lattice
        greedy publishes the full contingency table."""
        selection = select_cuboids(9, 2)
        assert selection == [tuple(range(9))]

    def test_selection_covers_all_queries(self):
        for d, k in [(6, 2), (8, 3)]:
            selection = select_cuboids(d, k)
            import itertools

            for q in itertools.combinations(range(d), k):
                assert any(set(q) <= set(v) for v in selection)

    def test_refuses_large_d(self):
        with pytest.raises(DimensionError):
            select_cuboids(MAX_LATTICE_DIMENSIONS + 1, 2)


class TestDataCubeMethod:
    def test_matches_flat_accuracy_class(self, tiny_dataset):
        """At small d the published cuboid is the full table."""
        mech = DataCubeMethod(float("inf"), 2, seed=0).fit(tiny_dataset)
        assert np.allclose(
            mech.marginal((0, 1)).counts, tiny_dataset.marginal((0, 1)).counts
        )

    def test_noisy_runs(self, tiny_dataset):
        mech = DataCubeMethod(1.0, 2, seed=0).fit(tiny_dataset)
        table = mech.marginal((2, 3))
        assert np.all(np.isfinite(table.counts))

    def test_uncoverable_query_rejected(self, tiny_dataset):
        mech = DataCubeMethod(1.0, 2, seed=0).fit(tiny_dataset)
        with pytest.raises(DimensionError):
            mech.marginal((0, 1, 2, 3, 4, 5, 6))
