"""Cross-module integration tests: the paper's pipeline end to end."""

import numpy as np
import pytest

from repro import BinaryDataset, PriView
from repro.baselines.direct import DirectMethod
from repro.baselines.fourier import FourierMethod
from repro.covering.repository import best_design
from repro.datasets.mchain import markov_chain_dataset
from repro.marginals.queries import (
    consecutive_attribute_sets,
    random_attribute_sets,
)
from repro.metrics.l2 import normalized_l2_error


@pytest.fixture(scope="module")
def kosarak_small():
    from repro.datasets.clickstream import kosarak_like

    return kosarak_like(num_records=40_000, rng=np.random.default_rng(9))


class TestHeadlineClaim:
    """PriView beats Direct and Fourier by a wide margin at d=32."""

    def test_order_of_magnitude_gap(self, kosarak_small):
        d, k, eps = 32, 6, 1.0
        rng = np.random.default_rng(0)
        queries = random_attribute_sets(d, k, 6, rng)
        n = kosarak_small.num_records

        design = best_design(d, 8, 2)
        synopsis = PriView(eps, design=design, seed=1).fit(kosarak_small)
        direct = DirectMethod(eps, k, seed=1).fit(kosarak_small)
        fourier = FourierMethod(eps, k, seed=1).fit(kosarak_small)

        def mean_err(mech):
            return np.mean(
                [
                    normalized_l2_error(
                        mech.marginal(q), kosarak_small.marginal(q), n
                    )
                    for q in queries
                ]
            )

        pv = mean_err(synopsis)
        assert pv * 10 < mean_err(direct)
        assert pv * 10 < mean_err(fourier)

    def test_epsilon_degrades_gracefully(self, kosarak_small):
        design = best_design(32, 8, 2)
        rng = np.random.default_rng(2)
        queries = random_attribute_sets(32, 4, 5, rng)
        n = kosarak_small.num_records
        errors = {}
        for eps in (10.0, 0.1):
            synopsis = PriView(eps, design=design, seed=4).fit(kosarak_small)
            errors[eps] = np.mean(
                [
                    normalized_l2_error(
                        synopsis.marginal(q), kosarak_small.marginal(q), n
                    )
                    for q in queries
                ]
            )
        assert errors[10.0] < errors[0.1]


class TestMchainPipeline:
    def test_consecutive_queries_accurate(self):
        dataset = markov_chain_dataset(
            2, 30_000, rng=np.random.default_rng(5)
        )
        design = best_design(64, 8, 2)  # AG(2,8), the paper's C_2(8,72)
        synopsis = PriView(1.0, design=design, seed=3).fit(dataset)
        windows = consecutive_attribute_sets(64, 4)[:5]
        for attrs in windows:
            err = normalized_l2_error(
                synopsis.marginal(attrs),
                dataset.marginal(attrs),
                dataset.num_records,
            )
            assert err < 0.1


class TestSynopsisReuse:
    def test_one_budget_many_arities(self, kosarak_small):
        """The synopsis answers k=2..8 without extra privacy cost."""
        design = best_design(32, 8, 2)
        synopsis = PriView(1.0, design=design, seed=0).fit(kosarak_small)
        for k in (2, 4, 6, 8):
            attrs = tuple(range(0, 2 * k, 2))
            table = synopsis.marginal(attrs)
            assert table.arity == k
            assert table.counts.min() >= -1e-6
