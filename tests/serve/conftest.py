"""Shared fixtures for the serving-subsystem tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.priview import PriView
from repro.marginals.dataset import BinaryDataset


@pytest.fixture
def chain_synopsis(rng, chain_design):
    """A fitted d=8 synopsis over the chain design (fast, correlated)."""
    n, d = 3000, 8
    types = rng.integers(0, 3, n)
    profiles = rng.random((3, d)) * 0.8
    data = (rng.random((n, d)) < profiles[types]).astype(np.uint8)
    dataset = BinaryDataset(data, name="chain")
    return PriView(2.0, design=chain_design, seed=11).fit(dataset)
