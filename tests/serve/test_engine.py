"""Engine behaviour: caching, batching, stats accounting, routing."""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.serve.engine as engine_module
from repro import obs
from repro.exceptions import QueryError, QueryTimeoutError
from repro.serve import PATH_SOLVED, QueryEngine


@pytest.fixture
def engine(chain_synopsis):
    with QueryEngine(chain_synopsis, workers=4) as eng:
        yield eng


class _CountingReconstruct:
    """Thread-safe counter over both reconstruction entry points: a
    batch of targets counts each target once, so "computed exactly
    once" holds whether a query went through ``reconstruct`` or a
    stacked ``reconstruct_batch``."""

    def __init__(self, module=engine_module):
        self._lock = threading.Lock()
        self.calls: dict[tuple, int] = {}
        self._real = module.reconstruct
        self._real_batch = module.reconstruct_batch

    def _count(self, target_attrs) -> None:
        key = tuple(sorted(target_attrs))
        with self._lock:
            self.calls[key] = self.calls.get(key, 0) + 1

    def __call__(self, views, target_attrs, **kwargs):
        self._count(target_attrs)
        return self._real(views, target_attrs, **kwargs)

    def batch(self, views, target_attrs_list, **kwargs):
        targets = list(target_attrs_list)
        for target_attrs in targets:
            self._count(target_attrs)
        return self._real_batch(views, targets, **kwargs)

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self.calls.values())


@pytest.fixture
def counting(monkeypatch):
    counter = _CountingReconstruct()
    monkeypatch.setattr(engine_module, "reconstruct", counter)
    monkeypatch.setattr(engine_module, "reconstruct_batch", counter.batch)
    return counter


class TestAnswer:
    def test_second_request_hits_cache(self, engine, counting):
        first = engine.answer((0, 4))
        second = engine.answer((0, 4))
        assert not first.cached and second.cached
        assert first.path == second.path == PATH_SOLVED
        assert np.array_equal(first.table.counts, second.table.counts)
        assert counting.total == 1

    def test_answers_are_private_copies(self, engine):
        first = engine.answer((0, 1))
        first.table.counts[:] = -1.0
        second = engine.answer((0, 1))
        assert second.table.counts.min() >= 0.0

    def test_methods_cached_separately(self, engine):
        a = engine.answer((0, 4), method="maxent")
        b = engine.answer((0, 4), method="lsq")
        assert not b.cached
        assert a.method == "maxent" and b.method == "lsq"

    def test_unknown_method_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.answer((0, 1), method="magic")
        with pytest.raises(QueryError):
            QueryEngine(engine.synopsis, default_method="magic")

    def test_timeout_raises_504_semantics(self, chain_synopsis, monkeypatch):
        real = engine_module.reconstruct

        def slow(views, target_attrs, **kwargs):
            import time

            time.sleep(0.5)
            return real(views, target_attrs, **kwargs)

        monkeypatch.setattr(engine_module, "reconstruct", slow)
        with QueryEngine(chain_synopsis, workers=2) as engine:
            with pytest.raises(QueryTimeoutError):
                engine.answer((0, 4), timeout=0.05)
            stats = engine.stats()
            assert stats["paths"]["error"] >= 1


class TestBatch:
    def test_dedupes_equivalent_sets(self, engine, counting):
        answers = engine.answer_batch([(0, 4), [4, 0], (0, 4), (1, 6)])
        assert [a.attrs for a in answers] == [(0, 4), (0, 4), (0, 4), (1, 6)]
        assert counting.calls == {(0, 4): 1, (1, 6): 1}

    def test_slots_never_share_arrays(self, engine):
        answers = engine.answer_batch([(0, 1), (1, 0)])
        answers[0].table.counts[:] = -5.0
        assert answers[1].table.counts.min() >= 0.0

    def test_per_query_method_override(self, engine):
        answers = engine.answer_batch([((0, 4), "lsq"), (0, 4)], method="maxent")
        assert answers[0].method == "lsq"
        assert answers[1].method == "maxent"

    def test_invalid_query_fails_fast(self, engine):
        with pytest.raises(QueryError):
            engine.answer_batch([(0, 1), (0, 0)])


class TestStatsAccounting:
    def test_every_request_lands_in_exactly_one_path(self, engine):
        queries = [(0, 1), (0, 4), (0, 4), (2, 3), (1, 6)]
        for attrs in queries:
            engine.answer(attrs)
        try:
            engine.answer((0, 0))
        except QueryError:
            pass
        stats = engine.stats()
        assert stats["requests"] == len(queries) + 1
        assert sum(stats["paths"].values()) == stats["requests"]
        assert stats["paths"]["error"] == 1
        cache = stats["cache"]
        assert cache["hits"] + cache["misses"] == len(queries)

    def test_obs_counters_match_engine_stats(self, chain_synopsis):
        with obs.session() as sess:
            with QueryEngine(chain_synopsis) as engine:
                for attrs in [(0, 1), (0, 4), (0, 4), (6, 7)]:
                    engine.answer(attrs)
                stats = engine.stats()
            counters = sess.metrics.snapshot()["counters"]
        assert counters["serve.request"] == stats["requests"]
        for path, count in stats["paths"].items():
            assert counters.get(f"serve.path.{path}", 0) == count
        assert counters["serve.cache.hit"] == stats["cache"]["hits"]
        assert counters["serve.cache.miss"] == stats["cache"]["misses"]
        assert sess.metrics.gauge("serve.cache.size") == stats["cache"]["size"]
        latency = sess.metrics.observation("serve.request_seconds")
        assert latency["count"] == stats["requests"]


class TestSynopsisRouting:
    def test_attached_engine_serves_marginal(self, chain_synopsis, counting):
        with QueryEngine(chain_synopsis, attach=True) as engine:
            assert chain_synopsis.engine is engine
            chain_synopsis.marginal((0, 4))
            chain_synopsis.marginal((0, 4))
            assert counting.total == 1
            assert engine.stats()["requests"] == 2
        chain_synopsis.attach_engine(None)
        assert chain_synopsis.engine is None

    def test_marginals_dedupes_without_engine(self, chain_synopsis, monkeypatch):
        import repro.core.synopsis as synopsis_module

        counter = _CountingReconstruct(synopsis_module)
        monkeypatch.setattr(synopsis_module, "reconstruct", counter)
        monkeypatch.setattr(synopsis_module, "reconstruct_batch", counter.batch)
        tables = chain_synopsis.marginals([(0, 4), [4, 0], (0, 4), (1, 6)])
        assert counter.calls == {(0, 4): 1, (1, 6): 1}
        assert [t.attrs for t in tables] == [(0, 4), (0, 4), (0, 4), (1, 6)]
        # repeated slots are equal but independent
        assert np.array_equal(tables[0].counts, tables[1].counts)
        tables[0].counts[:] = -1
        assert tables[1].counts.min() >= 0

    def test_marginals_routes_through_attached_engine(self, chain_synopsis):
        with QueryEngine(chain_synopsis, attach=True) as engine:
            tables = chain_synopsis.marginals([(0, 1), (1, 0), (0, 4)])
            assert len(tables) == 3
            assert engine.stats()["cache"]["size"] == 2
        chain_synopsis.attach_engine(None)
