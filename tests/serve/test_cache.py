"""LRU bound and single-flight semantics of the answer cache."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import QueryTimeoutError
from repro.serve import SingleFlightLRU


class TestLRU:
    def test_basic_get_or_compute(self):
        cache = SingleFlightLRU(4)
        value, hit = cache.get_or_compute("a", lambda: 1)
        assert (value, hit) == (1, False)
        value, hit = cache.get_or_compute("a", lambda: 99)
        assert (value, hit) == (1, True)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_capacity_bound_evicts_least_recently_used(self):
        cache = SingleFlightLRU(3)
        for key in "abc":
            cache.get_or_compute(key, lambda k=key: k.upper())
        assert cache.get("a") == "A"  # refresh a; b is now LRU
        cache.get_or_compute("d", lambda: "D")
        assert len(cache) == 3
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.stats()["evictions"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SingleFlightLRU(0)

    def test_items_snapshot(self):
        cache = SingleFlightLRU(4)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        assert dict(cache.items()) == {"a": 1, "b": 2}


class TestSingleFlight:
    def test_concurrent_requests_compute_once(self):
        cache = SingleFlightLRU(8)
        calls = []
        release = threading.Event()

        def factory():
            calls.append(threading.get_ident())
            release.wait(2.0)
            return "value"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_compute("k", factory)
                )
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        # let every thread reach the cache before releasing the leader
        deadline = time.monotonic() + 2.0
        while cache.stats()["coalesced"] < 7 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(calls) == 1
        assert len(results) == 8
        assert all(value == "value" for value, _ in results)
        # exactly one miss (the leader); everyone else coalesced
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["coalesced"] == 7

    def test_factory_error_propagates_and_is_not_cached(self):
        cache = SingleFlightLRU(4)

        def boom():
            raise RuntimeError("solver exploded")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        assert cache.get("k") is None
        # the key is retryable afterwards
        value, hit = cache.get_or_compute("k", lambda: "fine")
        assert (value, hit) == ("fine", False)

    def test_error_reaches_waiters(self):
        cache = SingleFlightLRU(4)
        started = threading.Event()
        release = threading.Event()
        errors = []

        def leader():
            def boom():
                started.set()
                release.wait(2.0)
                raise RuntimeError("shared failure")

            try:
                cache.get_or_compute("k", boom)
            except RuntimeError as exc:
                errors.append(exc)

        def follower():
            started.wait(2.0)
            try:
                cache.get_or_compute("k", lambda: "never")
            except RuntimeError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=leader),
            threading.Thread(target=follower),
        ]
        for thread in threads:
            thread.start()
        started.wait(2.0)
        # make sure the follower has parked before the leader fails
        deadline = time.monotonic() + 2.0
        while cache.stats()["coalesced"] < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(errors) == 2

    def test_waiter_timeout(self):
        cache = SingleFlightLRU(4)
        started = threading.Event()
        release = threading.Event()

        def slow():
            started.set()
            release.wait(5.0)
            return "late"

        leader = threading.Thread(
            target=lambda: cache.get_or_compute("k", slow)
        )
        leader.start()
        assert started.wait(2.0)
        with pytest.raises(QueryTimeoutError):
            cache.get_or_compute("k", lambda: "n/a", wait_timeout=0.05)
        release.set()
        leader.join(timeout=5)
        # the leader's value landed despite the waiter's timeout
        assert cache.get("k") == "late"
