"""Concurrency smoke test: 32 threads hammer one engine.

Asserts the single-flight guarantee (exactly one solver invocation per
distinct uncovered attribute set, no matter how many threads race) and
that answers never cross-talk between threads.
"""

from __future__ import annotations

import random
import threading

import numpy as np

import repro.serve.engine as engine_module
from repro.serve import PATH_COVERED, PATH_SOLVED, QueryEngine

THREADS = 32
COVERED = [(0, 1), (2, 3), (6, 7)]
# pairwise non-nested, so the derived path can never shortcut them
UNCOVERED = [(0, 4), (1, 6), (2, 7)]


def test_single_flight_under_hammering(chain_synopsis, monkeypatch):
    real = engine_module.reconstruct
    lock = threading.Lock()
    solver_calls: dict[tuple, int] = {}

    def counting(views, target_attrs, **kwargs):
        key = tuple(sorted(target_attrs))
        with lock:
            solver_calls[key] = solver_calls.get(key, 0) + 1
        return real(views, target_attrs, **kwargs)

    monkeypatch.setattr(engine_module, "reconstruct", counting)

    with QueryEngine(chain_synopsis, workers=8) as engine:
        # reference answers, computed through the same plumbing
        reference = {
            attrs: engine.answer(attrs).table.counts.copy()
            for attrs in COVERED + UNCOVERED
        }
        # reset to an empty cache so all 32 threads genuinely race
        engine._cache.clear()
        solver_calls.clear()

        barrier = threading.Barrier(THREADS)
        failures: list[str] = []

        def worker(thread_index: int) -> None:
            queries = COVERED + UNCOVERED
            random.Random(thread_index).shuffle(queries)
            barrier.wait(timeout=10)
            for attrs in queries:
                answer = engine.answer(attrs)
                if answer.attrs != attrs:
                    failures.append(f"{attrs}: got attrs {answer.attrs}")
                elif not np.array_equal(answer.table.counts, reference[attrs]):
                    failures.append(f"{attrs}: cross-talk in counts")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert not failures, failures[:5]
        # single-flight: one solver run per distinct uncovered set
        assert solver_calls == {attrs: 1 for attrs in UNCOVERED}

        stats = engine.stats()
        total = THREADS * len(COVERED + UNCOVERED)
        assert stats["requests"] == total + len(reference)
        assert sum(stats["paths"].values()) == stats["requests"]
        assert stats["paths"]["error"] == 0
        assert stats["paths"]["derived"] == 0
        # hits keep the original path, so every request for an
        # uncovered set is accounted under 'solved' and every request
        # for a covered set under 'covered'
        per_set = THREADS + 1  # the hammering threads + the reference pass
        assert stats["paths"][PATH_SOLVED] == per_set * len(UNCOVERED)
        assert stats["paths"][PATH_COVERED] == per_set * len(COVERED)
