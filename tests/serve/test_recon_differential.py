"""Differential tests: planner paths and recon methods must agree.

For random queries against one synopsis, the covered, derived and
solved paths — the latter under both ``maxent`` and ``residual`` — are
different routes to the *same* released information.  These tests pin
the agreements that must hold across routes:

* any marginal over attributes shared by two answers is (near) the
  same whichever answer it is projected from;
* the batch path answers exactly what the one-at-a-time path answers;
* the stacked residual pre-solve used by ``answer_batch`` changes the
  wall-clock shape, never the tables.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.reconstruction import RECONSTRUCTION_METHODS
from repro.marginals.attrs import AttrSet
from repro.serve import PATH_COVERED, PATH_SOLVED, QueryEngine

RECON_METHODS = ("maxent", "residual")


@pytest.fixture
def engine(chain_synopsis):
    with QueryEngine(chain_synopsis) as eng:
        yield eng


def _rel_l1(a, b, total):
    return np.abs(a - b).sum() / total


class TestPathAgreement:
    @pytest.mark.parametrize("method", RECON_METHODS)
    def test_covered_and_solved_agree_on_overlap(self, engine, method):
        """Project a covered answer and a solved answer down to their
        shared attributes: both must reproduce the view information."""
        total = engine.source.total_count()
        covered = engine.answer((2, 3, 4, 5), method=method)
        assert covered.path == PATH_COVERED
        solved = engine.answer((3, 4, 6), method=method)
        assert solved.path == PATH_SOLVED
        overlap = AttrSet((3, 4))
        a = covered.table.project(overlap).counts
        b = solved.table.project(overlap).counts
        assert _rel_l1(a, b, total) < 0.02

    @pytest.mark.parametrize("method", RECON_METHODS)
    def test_random_query_pairs_agree_on_overlap(self, engine, method):
        rng = np.random.default_rng(77)
        total = engine.source.total_count()
        d = engine.source.num_attributes
        for _ in range(8):
            k1, k2 = rng.integers(2, 5, size=2)
            q1 = AttrSet(sorted(rng.choice(d, size=k1, replace=False)))
            q2 = AttrSet(sorted(rng.choice(d, size=k2, replace=False)))
            overlap = AttrSet(sorted(set(q1) & set(q2)))
            if not overlap:
                continue
            a1 = engine.answer(q1, method=method)
            a2 = engine.answer(q2, method=method)
            pa = a1.table.project(overlap).counts
            pb = a2.table.project(overlap).counts
            # Identical released info, two completions: projections
            # onto determined overlaps agree within solver tolerance.
            assert _rel_l1(pa, pb, total) < 0.25

    def test_methods_agree_on_covered_and_derived(self, chain_synopsis):
        """Covered and derived answers never run a solver, so the
        method label must not change the table at all."""
        with QueryEngine(chain_synopsis) as eng:
            for attrs in [(0, 1), (2, 3), (4, 5, 6)]:
                tables = [
                    eng.answer(attrs, method=m).table.counts
                    for m in RECON_METHODS
                ]
                assert np.allclose(tables[0], tables[1])

    def test_methods_agree_within_tolerance_on_solved(self, engine):
        total = engine.source.total_count()
        for attrs in [(0, 4), (1, 6), (0, 2, 4), (1, 3, 6)]:
            answers = {
                m: engine.answer(attrs, method=m) for m in RECON_METHODS
            }
            assert {a.path for a in answers.values()} == {PATH_SOLVED}
            assert _rel_l1(
                answers["maxent"].table.counts,
                answers["residual"].table.counts,
                total,
            ) < 0.25


class TestBatchDifferential:
    @pytest.mark.parametrize("method", RECON_METHODS)
    def test_batch_equals_one_at_a_time(self, chain_synopsis, method):
        """The stacked pre-solve must be invisible in the results:
        a fresh engine's batch answers equal a fresh engine's serial
        answers, query for query."""
        workload = [
            (0, 1), (0, 4), (1, 6), (0, 2, 4), (3, 7),
            (2, 3, 4), (1, 3, 6), (0, 4), (),
        ]
        with QueryEngine(chain_synopsis) as eng_a:
            batch = eng_a.answer_batch(workload, method=method)
        with QueryEngine(chain_synopsis) as eng_b:
            serial = [eng_b.answer(q, method=method) for q in workload]
        for got, want in zip(batch, serial):
            assert got.path == want.path
            assert got.method == want.method == method
            assert np.allclose(got.table.counts, want.table.counts, atol=1e-8)

    def test_mixed_method_batch_routes_each_group(self, chain_synopsis):
        workload = [
            ((0, 4), "maxent"), ((0, 4), "residual"),
            ((1, 6), "maxent"), ((1, 6), "residual"),
        ]
        with QueryEngine(chain_synopsis) as eng:
            out = eng.answer_batch(workload)
        assert [a.method for a in out] == [
            "maxent", "residual", "maxent", "residual",
        ]
        total = chain_synopsis.total_count()
        assert _rel_l1(out[0].table.counts, out[1].table.counts, total) < 0.25
        for a in out:
            assert a.table.counts.min() >= -1e-9
            assert a.table.total() == pytest.approx(total, rel=1e-6)

    def test_all_methods_accepted_end_to_end(self, chain_synopsis):
        with QueryEngine(chain_synopsis) as eng:
            for method in RECONSTRUCTION_METHODS:
                answer = eng.answer((0, 6), method=method)
                assert np.all(np.isfinite(answer.table.counts))


class TestDerivedDifferential:
    @pytest.mark.parametrize("method", RECON_METHODS)
    def test_derived_matches_fresh_solve(self, chain_synopsis, method):
        """Derived answers (projections of cached solves) stay within
        solver tolerance of a from-scratch solve of the subset."""
        total = chain_synopsis.total_count()
        with QueryEngine(chain_synopsis) as eng:
            parent = eng.answer((0, 1, 4, 6), method=method)
            assert parent.path == PATH_SOLVED
            child = eng.answer((0, 4, 6), method=method)
            assert child.path == "derived"
            assert child.source == (0, 1, 4, 6)
        with QueryEngine(chain_synopsis, derive_from_cache=False) as eng:
            fresh = eng.answer((0, 4, 6), method=method)
            assert fresh.path == PATH_SOLVED
        assert _rel_l1(
            child.table.counts, fresh.table.counts, total
        ) < 0.15
