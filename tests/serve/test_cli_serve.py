"""CLI coverage for the ``serve`` / ``query`` verbs."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialization import save_synopsis


@pytest.fixture
def synopsis_path(chain_synopsis, tmp_path):
    return save_synopsis(chain_synopsis, tmp_path / "synopsis.npz")


class TestQueryVerb:
    def test_local_query_human_output(self, synopsis_path, capsys):
        code = main(["query", "0,1", "--synopsis", str(synopsis_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "marginal (0, 1)" in out
        assert "path=covered" in out

    def test_local_query_json_output(self, synopsis_path, capsys):
        code = main(
            ["query", "0,4", "4,0", "--synopsis", str(synopsis_path), "--json"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        payloads = [json.loads(line) for line in lines]
        assert [p["attrs"] for p in payloads] == [[0, 4], [0, 4]]
        assert payloads[0]["path"] == "solved"
        # the duplicate came from the dedup'd batch path
        assert payloads[1]["cached"] is True

    def test_bad_attrs_exit(self, synopsis_path):
        with pytest.raises(SystemExit):
            main(["query", "0,x", "--synopsis", str(synopsis_path)])

    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "0,1"])


class TestQueryAgainstServer:
    def test_query_url_round_trip(self, chain_synopsis, capsys):
        from repro.serve import MarginalServer, QueryEngine

        engine = QueryEngine(chain_synopsis)
        with MarginalServer(engine, port=0) as server:
            code = main(["query", "0,1", "--url", server.url, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["path"] == "covered"


class TestServeParser:
    def test_serve_args_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--synopsis", "s.npz", "--port", "0",
                "--cache-size", "64", "--workers", "2", "--timeout", "5",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.cache_size == 64

    @pytest.mark.parametrize("verb", [
        ["serve", "--synopsis", "s.npz"],
        ["store", "serve", "--store", "d"],
    ])
    @pytest.mark.parametrize("flag", ["--recon-method", "--method"])
    def test_recon_method_flag(self, verb, flag):
        args = build_parser().parse_args(verb + [flag, "residual"])
        assert args.method == "residual"
        # default stays None so the engine default (maxent) applies
        assert build_parser().parse_args(verb).method is None

    def test_recon_method_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--synopsis", "s.npz", "--recon-method", "nope"]
            )

    def test_query_recon_method_residual(self, synopsis_path, capsys):
        code = main([
            "query", "0,4", "--synopsis", str(synopsis_path),
            "--recon-method", "residual", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["path"] == "solved"
        assert payload["method"] == "residual"


class TestServeSynopsisMigration:
    """The deprecated ``serve_synopsis`` alias stays for external
    users (tests/baselines/test_protocols.py asserts the warning), but
    nothing inside this repo may call it anymore."""

    INTERNAL_CALLERS = (
        "src/repro/cli.py",
        "scripts/serve_smoke.py",
        "scripts/store_smoke.py",
    )

    def test_internal_callers_use_serve_source(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for relative in self.INTERNAL_CALLERS:
            path = root / relative
            source = path.read_text()
            assert "serve_synopsis" not in source, (
                f"{relative} still calls the deprecated serve_synopsis"
            )
            assert "serve_source" in source or "serve_store" in source

    def test_alias_still_warns_for_external_users(self, chain_synopsis):
        import warnings

        from repro.serve import serve_synopsis

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning, match="serve_source"):
                serve_synopsis(chain_synopsis, port=0)
