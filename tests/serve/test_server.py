"""End-to-end HTTP tests: server + client over a loopback socket."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro.serve.engine as engine_module
from repro.exceptions import QueryError, QueryTimeoutError
from repro.serve import MarginalServer, QueryClient, QueryEngine


@pytest.fixture
def server(chain_synopsis):
    engine = QueryEngine(chain_synopsis, workers=4)
    with MarginalServer(engine, port=0) as srv:
        yield srv


@pytest.fixture
def client(server):
    return QueryClient(server.url, timeout=10.0)


class TestEndpoints:
    def test_healthz(self, client, chain_synopsis):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["num_attributes"] == chain_synopsis.num_attributes
        assert payload["views"] == chain_synopsis.num_views
        assert payload["uptime_s"] >= 0

    def test_marginal_roundtrip(self, client, chain_synopsis):
        table = client.marginal_table((0, 1))
        expected = chain_synopsis.marginal((0, 1))
        assert table.attrs == expected.attrs
        np.testing.assert_allclose(table.counts, expected.counts)

    def test_marginal_payload_fields(self, client):
        payload = client.marginal((0, 4))
        assert payload["path"] == "solved"
        assert payload["cached"] is False
        assert payload["k"] == 2
        assert len(payload["counts"]) == 4
        assert payload["elapsed_ms"] >= 0
        # solver telemetry travels with the answer
        assert "maxent" in payload["meta"]
        again = client.marginal((0, 4))
        assert again["cached"] is True

    def test_batch_dedup_and_order(self, client):
        payload = client.batch([(0, 1), (1, 0), (0, 4)])
        assert payload["count"] == 3
        assert payload["distinct"] == 2
        assert [tuple(a["attrs"]) for a in payload["answers"]] == [
            (0, 1), (0, 1), (0, 4),
        ]

    def test_stats_accounts_every_request(self, client):
        for attrs in [(0, 1), (0, 4), (0, 4)]:
            client.marginal(attrs)
        with pytest.raises(QueryError):
            client.marginal((0, 0))
        stats = client.stats()
        assert stats["requests"] == sum(stats["paths"].values())
        assert stats["paths"]["error"] == 1
        assert stats["server"]["port"] == client_port(client)
        assert "cache" in stats and stats["cache"]["capacity"] > 0


def client_port(client: QueryClient) -> int:
    return int(client.base_url.rsplit(":", 1)[1])


class TestErrors:
    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope", timeout=5)
        assert excinfo.value.code == 404

    def test_invalid_json_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/marginal",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        detail = json.loads(excinfo.value.read())["error"]
        assert detail["type"] == "QueryError"

    def test_bad_attrs_400(self, client):
        for attrs in [(0, 0), (0, 99)]:
            with pytest.raises(QueryError):
                client.marginal(attrs)

    def test_non_integer_attrs_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/marginal",
            data=json.dumps({"attrs": ["a", 1]}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_timeout_504(self, chain_synopsis, monkeypatch):
        real = engine_module.reconstruct

        def slow(views, target_attrs, **kwargs):
            import time

            time.sleep(0.5)
            return real(views, target_attrs, **kwargs)

        monkeypatch.setattr(engine_module, "reconstruct", slow)
        engine = QueryEngine(chain_synopsis, workers=2)
        with MarginalServer(engine, port=0, request_timeout=0.05) as srv:
            client = QueryClient(srv.url, timeout=10.0)
            with pytest.raises(QueryTimeoutError):
                client.marginal((0, 4))


class TestLifecycle:
    def test_shutdown_refuses_further_connections(self, chain_synopsis):
        engine = QueryEngine(chain_synopsis)
        server = MarginalServer(engine, port=0).start()
        url = server.url
        QueryClient(url).healthz()
        server.shutdown()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(f"{url}/healthz", timeout=1)
