"""Planner classification and path-equivalence guarantees."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.reconstruction import reconstruct
from repro.exceptions import QueryError
from repro.serve import (
    PATH_COVERED,
    PATH_DERIVED,
    PATH_SOLVED,
    QueryEngine,
    QueryPlanner,
)


@pytest.fixture
def planner(chain_synopsis):
    return QueryPlanner(chain_synopsis.views, chain_synopsis.num_attributes)


class TestClassification:
    def test_every_block_subset_is_covered(self, planner, chain_design):
        for block in chain_design.blocks:
            for k in range(1, len(block) + 1):
                for attrs in itertools.combinations(block, k):
                    plan = planner.plan(attrs, "maxent")
                    assert plan.path == PATH_COVERED
                    assert set(attrs).issubset(plan.source)

    def test_uncovered_sets_are_solved(self, planner):
        for attrs in [(0, 4), (1, 6), (0, 2, 4), (3, 7)]:
            plan = planner.plan(attrs, "maxent")
            assert plan.path == PATH_SOLVED
            assert plan.source is None

    def test_cached_superset_yields_derived(self, planner, chain_synopsis):
        parent = chain_synopsis.marginal((0, 1, 4))
        cached = {(0, 1, 4): parent}
        plan = planner.plan((0, 4), "maxent", cached)
        assert plan.path == PATH_DERIVED
        assert plan.source == (0, 1, 4)
        # covered always wins over derived
        assert planner.plan((0, 1), "maxent", cached).path == PATH_COVERED
        # the cached entry itself is not "derived" from itself
        assert planner.plan((0, 1, 4), "maxent", cached).path == PATH_SOLVED

    def test_smallest_superset_wins(self, planner, chain_synopsis):
        big = chain_synopsis.marginal((0, 1, 4, 6))
        small = chain_synopsis.marginal((0, 4, 6))
        cached = {(0, 1, 4, 6): big, (0, 4, 6): small}
        plan = planner.plan((0, 6), "maxent", cached)
        assert plan.path == PATH_DERIVED
        assert plan.source == (0, 4, 6)

    def test_normalisation(self, planner):
        assert planner.plan([3, 1], "maxent").attrs == (1, 3)

    @pytest.mark.parametrize("attrs", [(0, 0), (-1, 2), (0, 8), ("x",)])
    def test_bad_attrs_rejected(self, planner, attrs):
        with pytest.raises(QueryError):
            planner.validate(attrs)


class TestPathEquivalence:
    def test_covered_path_bitwise_identical_to_reconstruct(
        self, chain_synopsis, chain_design
    ):
        """The planner's projection answer must be byte-for-byte what
        ``reconstruct`` (the maxent front door) returns for every
        covered attribute set."""
        with QueryEngine(chain_synopsis) as engine:
            for block in chain_design.blocks:
                for k in range(1, len(block) + 1):
                    for attrs in itertools.combinations(block, k):
                        served = engine.answer(attrs)
                        direct = reconstruct(
                            chain_synopsis.views, attrs, method="maxent"
                        )
                        assert served.path == PATH_COVERED
                        assert np.array_equal(served.table.counts, direct.counts)

    def test_derived_path_matches_solver_within_tolerance(self, chain_synopsis):
        """Projecting a cached parent whose maxent model factorises
        across the target must agree with a fresh solve up to solver
        tolerance.

        Parent (0, 1, 4) has maximal constraints {0,1} and {4}, so its
        max-entropy table is T(0,1) x p(4); projecting onto (0, 4)
        gives p(0) x p(4), exactly the max-entropy solution of the
        direct constraints {0} and {4}.
        """
        total = chain_synopsis.total_count()
        with QueryEngine(chain_synopsis) as engine:
            parent = engine.answer((0, 1, 4))
            assert parent.path == PATH_SOLVED
            derived = engine.answer((0, 4))
            assert derived.path == PATH_DERIVED
            assert derived.source == (0, 1, 4)
            direct = reconstruct(chain_synopsis.views, (0, 4), method="maxent")
            np.testing.assert_allclose(
                derived.table.counts, direct.counts, atol=1e-5 * max(total, 1.0)
            )

    def test_derive_from_cache_can_be_disabled(self, chain_synopsis):
        with QueryEngine(chain_synopsis, derive_from_cache=False) as engine:
            engine.answer((0, 1, 4))
            assert engine.answer((0, 4)).path == PATH_SOLVED
