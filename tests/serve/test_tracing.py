"""End-to-end trace propagation and typed remote errors."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.exceptions import (
    QueryError,
    QueryTimeoutError,
    RemoteQueryError,
    RemoteQueryTimeoutError,
)
from repro.obs import propagation
from repro.serve import MarginalServer, QueryClient, QueryEngine

UNCOVERED = (0, 2, 4, 6)  # forces the solver (spans under the request)


def spans_named(roots, name):
    found, stack = [], list(roots)
    while stack:
        span = stack.pop()
        if span.name == name:
            found.append(span)
        stack.extend(span.children)
    return found


class TestPropagationUnit:
    def test_traceparent_round_trip(self):
        context = propagation.new_context()
        parsed = propagation.parse_traceparent(context.traceparent)
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id
        assert parsed.sampled is True

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-short-beef-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "zz-" + "1" * 32 + "-" + "2" * 16 + "-01",
    ])
    def test_malformed_headers_rejected(self, header):
        assert propagation.parse_traceparent(header) is None

    def test_child_keeps_trace_id(self):
        context = propagation.new_context()
        child = context.child()
        assert child.trace_id == context.trace_id
        assert child.span_id != context.span_id

    def test_sampling_rates(self):
        assert propagation.sampled_context(0.0).sampled is False
        assert propagation.sampled_context(1.0).sampled is True
        # unsampled contexts still get ids (request ids never vanish)
        assert len(propagation.sampled_context(0.0).trace_id) == 32

    def test_trace_scope_nests_and_restores(self):
        outer = propagation.new_context()
        with propagation.trace_scope(outer):
            assert propagation.current_context() is outer
            with propagation.trace_scope(None):  # None keeps the outer
                assert propagation.current_context() is outer
        assert propagation.current_context() is None


class TestEndToEnd:
    @pytest.fixture
    def served(self, chain_synopsis):
        with obs.session(ledger=False) as sess:
            engine = QueryEngine(chain_synopsis, workers=4)
            with MarginalServer(
                engine, port=0, trace_sample_rate=1.0
            ) as server:
                yield sess, server, QueryClient(server.url, trace=True)

    def test_one_trace_id_everywhere(self, served):
        sess, server, client = served
        context = propagation.new_context()
        with propagation.trace_scope(context):
            payload = client.marginal(UNCOVERED)

        # client: response body and last_trace
        assert payload["trace"]["trace_id"] == context.trace_id
        assert client.last_trace["trace_id"] == context.trace_id
        assert client.last_trace["request_id"]

        # server: access log
        matching = [
            record for record in server.access_log()
            if record["trace_id"] == context.trace_id
        ]
        assert len(matching) == 1
        assert matching[0]["status"] == 200
        assert matching[0]["method"] == "POST"
        assert matching[0]["request_id"] == payload["trace"]["request_id"]

        # engine and planner/solver spans
        request_spans = [
            span for span in spans_named(sess.tracer.roots, "serve.request")
            if span.trace_id == context.trace_id
        ]
        assert len(request_spans) == 1
        compute = spans_named(request_spans, "serve.compute.solved")
        assert compute
        assert all(s.trace_id == context.trace_id for s in compute)

    def test_response_headers_echo_trace(self, served):
        _, server, client = served
        client.healthz()
        assert client.last_trace is not None
        record = server.access_log()[-1]
        assert record["trace_id"] == client.last_trace["trace_id"]

    def test_batch_propagates_through_pool(self, served):
        sess, _, client = served
        context = propagation.new_context()
        with propagation.trace_scope(context):
            client.batch([(0, 1), (1, 2), UNCOVERED])
        tagged = [
            span for span in spans_named(sess.tracer.roots, "serve.request")
            if span.trace_id == context.trace_id
        ]
        assert len(tagged) == 3  # every pooled sub-answer carries the id

    def test_sample_rate_zero_issues_ids_without_spans(self, chain_synopsis):
        with obs.session(ledger=False) as sess:
            engine = QueryEngine(chain_synopsis, workers=4)
            with MarginalServer(
                engine, port=0, trace_sample_rate=0.0
            ) as server:
                client = QueryClient(server.url)  # no client tracing either
                payload = client.marginal(UNCOVERED)
                assert payload["trace"]["sampled"] is False
                assert payload["trace"]["request_id"]
                assert server.access_log()[-1]["sampled"] is False
            spans = spans_named(sess.tracer.roots, "serve.request")
            assert all(span.trace_id is None for span in spans)

    def test_metrics_endpoint_and_stats_latency(self, served):
        from repro.obs.prometheus import histogram_quantile, parse_prometheus

        _, _, client = served
        for _ in range(5):
            client.marginal(UNCOVERED)
            client.marginal((0, 1))
        families = parse_prometheus(client.metrics())
        samples = families["serve_request_seconds"]["samples"]
        paths = {
            labels["path"] for name, labels, _ in samples
            if name.endswith("_bucket")
        }
        assert {"covered", "solved"} <= paths
        assert {
            labels["dataset"] for name, labels, _ in samples
            if name.endswith("_bucket")
        } == {"default"}
        scraped = histogram_quantile(samples, 0.95)
        internal = client.stats()["latency"]["p95"]
        assert internal / 2 <= scraped <= internal * 2


class TestTypedErrors:
    @pytest.fixture
    def client(self, chain_synopsis):
        engine = QueryEngine(chain_synopsis, workers=2)
        with MarginalServer(engine, port=0) as server:
            yield QueryClient(server.url)

    def test_remote_error_carries_structure(self, client):
        with pytest.raises(RemoteQueryError) as excinfo:
            client.marginal((0, 0))
        exc = excinfo.value
        assert exc.status == 400
        assert exc.error_type == "QueryError"
        assert exc.request_id
        assert exc.trace_id
        assert isinstance(exc, QueryError)  # old handlers keep working

    def test_unknown_method_names_the_original_type(self, client):
        with pytest.raises(RemoteQueryError) as excinfo:
            client.marginal((0, 1), method="nope")
        assert excinfo.value.error_type == "QueryError"
        assert "nope" in str(excinfo.value)

    def test_not_found_status(self, client):
        with pytest.raises(RemoteQueryError) as excinfo:
            client._request("/v1/bogus", {})
        assert excinfo.value.status == 404

    def test_timeout_is_both_types(self):
        exc = RemoteQueryTimeoutError("deadline", status=504)
        assert isinstance(exc, QueryTimeoutError)
        assert isinstance(exc, RemoteQueryError)
