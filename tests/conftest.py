"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.covering.design import CoveringDesign
from repro.marginals.dataset import BinaryDataset


@pytest.fixture(scope="session", autouse=True)
def _default_obs_session():
    """Run the whole suite under an observability session.

    Instrumentation (spans, counters, the budget ledger) is exercised
    by default so regressions in the instrumented hot paths surface in
    tier-1; tests needing an isolated session open a nested
    ``obs.session()``, which shadows this one for its duration.
    """
    with obs.session() as sess:
        yield sess


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset(rng) -> BinaryDataset:
    """Correlated N=4000, d=10 dataset (mixture of three profiles)."""
    n, d = 4000, 10
    types = rng.integers(0, 3, n)
    profiles = rng.random((3, d)) * 0.7
    data = (rng.random((n, d)) < profiles[types]).astype(np.uint8)
    return BinaryDataset(data, name="small")


@pytest.fixture
def tiny_dataset(rng) -> BinaryDataset:
    """N=500, d=6 — cheap enough for exhaustive checks."""
    return BinaryDataset.random(500, 6, density=0.4, rng=rng, name="tiny")


@pytest.fixture
def chain_design() -> CoveringDesign:
    """Three overlapping 4-blocks covering d=8 with a chain structure."""
    return CoveringDesign(
        8, 4, 1, ((0, 1, 2, 3), (2, 3, 4, 5), (4, 5, 6, 7))
    )
