"""Tests for privacy-budget accounting."""

import math

import pytest

from repro.exceptions import PrivacyBudgetError
from repro.mechanisms.budget import PrivacyBudget


class TestPrivacyBudget:
    def test_spend_and_remaining(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.3)
        assert budget.spent == pytest.approx(0.3)
        assert budget.remaining == pytest.approx(0.7)

    def test_overspend_rejected(self):
        budget = PrivacyBudget(0.5)
        budget.spend(0.4)
        with pytest.raises(PrivacyBudgetError):
            budget.spend(0.2)

    def test_exact_spend_allowed(self):
        budget = PrivacyBudget(1.0)
        budget.spend(1.0)
        assert budget.remaining == pytest.approx(0.0)

    def test_nonpositive_total_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(0.0)

    def test_nonpositive_spend_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(1.0).spend(0.0)

    def test_split_consumes_everything(self):
        budget = PrivacyBudget(1.0)
        budget.spend(0.25)
        shares = budget.split(3)
        assert shares == pytest.approx([0.25, 0.25, 0.25])
        assert budget.remaining == pytest.approx(0.0)

    def test_split_exhausted_rejected(self):
        budget = PrivacyBudget(1.0)
        budget.split(2)
        with pytest.raises(PrivacyBudgetError):
            budget.split(2)

    def test_split_invalid_parts(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(1.0).split(0)

    def test_infinite_budget(self):
        budget = PrivacyBudget(math.inf)
        budget.spend(1e9)
        assert budget.split(4) == [math.inf] * 4

    def test_repr(self):
        assert "total=1.0" in repr(PrivacyBudget(1.0))
