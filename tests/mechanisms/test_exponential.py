"""Tests for the exponential mechanism."""

import numpy as np
import pytest

from repro.exceptions import PrivacyBudgetError
from repro.mechanisms.exponential import exponential_mechanism


class TestExponentialMechanism:
    def test_infinite_epsilon_is_argmax(self, rng):
        scores = np.array([1.0, 5.0, 3.0])
        for _ in range(10):
            assert exponential_mechanism(scores, float("inf"), rng=rng) == 1

    def test_prefers_high_scores(self, rng):
        scores = np.array([0.0, 0.0, 50.0, 0.0])
        picks = [
            exponential_mechanism(scores, 1.0, rng=rng) for _ in range(200)
        ]
        assert np.mean(np.array(picks) == 2) > 0.9

    def test_low_epsilon_near_uniform(self, rng):
        scores = np.array([0.0, 100.0])
        picks = np.array(
            [exponential_mechanism(scores, 1e-6, rng=rng) for _ in range(2000)]
        )
        assert abs((picks == 1).mean() - 0.5) < 0.05

    def test_empty_candidates_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            exponential_mechanism(np.array([]), 1.0)

    def test_nonpositive_epsilon_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            exponential_mechanism(np.array([1.0]), -1.0)

    def test_handles_huge_scores(self, rng):
        """Softmax must be stabilised against overflow."""
        scores = np.array([1e6, 1e6 + 1])
        idx = exponential_mechanism(scores, 1.0, rng=rng)
        assert idx in (0, 1)

    def test_returns_python_int(self, rng):
        result = exponential_mechanism(np.array([1.0, 2.0]), 1.0, rng=rng)
        assert isinstance(result, int)
