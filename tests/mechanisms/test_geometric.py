"""Tests for the two-sided geometric mechanism."""

import numpy as np
import pytest

from repro.exceptions import PrivacyBudgetError
from repro.marginals.table import MarginalTable
from repro.mechanisms.geometric import (
    geometric_noise,
    geometric_noisy_counts,
    geometric_noisy_marginal,
    geometric_variance,
)


class TestGeometricNoise:
    def test_integer_valued(self, rng):
        noise = geometric_noise(1.0, 1.0, 1000, rng)
        assert noise.dtype == np.int64

    def test_symmetric_around_zero(self, rng):
        noise = geometric_noise(1.0, 1.0, 200_000, rng)
        assert abs(noise.mean()) < 0.02

    def test_empirical_variance_matches_formula(self, rng):
        noise = geometric_noise(0.5, 1.0, 300_000, rng)
        assert noise.var() == pytest.approx(
            geometric_variance(0.5), rel=0.05
        )

    def test_variance_close_to_laplace_for_small_epsilon(self):
        """For small eps/sens the geometric approaches Lap(sens/eps)."""
        from repro.mechanisms.laplace import laplace_variance

        assert geometric_variance(0.05) == pytest.approx(
            laplace_variance(1 / 0.05), rel=0.05
        )

    def test_infinite_epsilon_no_noise(self, rng):
        assert np.all(geometric_noise(float("inf"), 1.0, 10, rng) == 0)

    def test_invalid_parameters(self):
        with pytest.raises(PrivacyBudgetError):
            geometric_noise(0.0, 1.0, 3)
        with pytest.raises(PrivacyBudgetError):
            geometric_noise(1.0, 0.0, 3)

    def test_higher_sensitivity_more_noise(self, rng):
        low = geometric_noise(1.0, 1.0, 100_000, rng).var()
        high = geometric_noise(1.0, 10.0, 100_000, rng).var()
        assert high > 10 * low


class TestGeometricCounts:
    def test_integer_outputs_on_integer_counts(self, rng):
        counts = np.array([10.0, 20.0, 30.0])
        noisy = geometric_noisy_counts(counts, 1.0, rng=rng)
        assert np.allclose(noisy, np.round(noisy))

    def test_marginal_wrapper(self, rng):
        table = MarginalTable((1, 4), np.full(4, 100.0))
        noisy = geometric_noisy_marginal(table, 1.0, rng=rng)
        assert noisy.attrs == (1, 4)
        assert np.allclose(noisy.counts, np.round(noisy.counts))

    def test_pipeline_integration(self, small_dataset, rng):
        """Geometric noise drops into the PriView post-processing."""
        from repro.core.consistency import make_consistent
        from repro.core.nonnegativity import ripple
        from repro.covering.repository import best_design

        design = best_design(10, 4, 2)
        views = [
            geometric_noisy_marginal(
                small_dataset.marginal(block),
                1.0,
                sensitivity=design.num_blocks,
                rng=rng,
            )
            for block in design.blocks
        ]
        make_consistent(views)
        for view in views:
            ripple(view)
        make_consistent(views)
        totals = [v.total() for v in views]
        assert np.allclose(totals, totals[0])
