"""Tests for the Laplace mechanism."""

import numpy as np
import pytest

from repro.exceptions import PrivacyBudgetError
from repro.marginals.table import MarginalTable
from repro.mechanisms.laplace import (
    laplace_noise,
    laplace_variance,
    noisy_counts,
    noisy_marginal,
)


class TestLaplaceNoise:
    def test_zero_scale_is_zero(self):
        assert np.all(laplace_noise(0.0, 10) == 0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            laplace_noise(-1.0, 3)

    def test_empirical_variance(self, rng):
        samples = laplace_noise(2.0, 200_000, rng)
        assert samples.var() == pytest.approx(laplace_variance(2.0), rel=0.05)

    def test_empirical_mean_zero(self, rng):
        samples = laplace_noise(1.0, 200_000, rng)
        assert abs(samples.mean()) < 0.02

    def test_shape(self, rng):
        assert laplace_noise(1.0, (3, 4), rng).shape == (3, 4)


class TestNoisyCounts:
    def test_infinite_epsilon_exact(self, rng):
        counts = np.array([1.0, 2.0, 3.0])
        noisy = noisy_counts(counts, float("inf"), rng=rng)
        assert np.array_equal(noisy, counts)
        noisy[0] = 99  # returned array is a copy
        assert counts[0] == 1.0

    def test_nonpositive_epsilon_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            noisy_counts(np.zeros(2), 0.0)

    def test_noise_scale_grows_with_sensitivity(self, rng):
        counts = np.zeros(100_000)
        small = noisy_counts(counts, 1.0, sensitivity=1.0, rng=rng)
        large = noisy_counts(counts, 1.0, sensitivity=10.0, rng=rng)
        assert large.var() == pytest.approx(100 * small.var(), rel=0.2)

    def test_unit_variance(self, rng):
        """Equation 2: V_u = 2 / eps^2."""
        noise = noisy_counts(np.zeros(300_000), 0.5, rng=rng)
        assert noise.var() == pytest.approx(2 / 0.25, rel=0.05)


class TestNoisyMarginal:
    def test_preserves_attrs(self, rng):
        table = MarginalTable((2, 7), np.ones(4))
        noisy = noisy_marginal(table, 1.0, rng=rng)
        assert noisy.attrs == (2, 7)
        assert noisy.size == 4

    def test_original_untouched(self, rng):
        table = MarginalTable((0,), np.array([5.0, 5.0]))
        noisy_marginal(table, 0.01, rng=rng)
        assert np.array_equal(table.counts, [5.0, 5.0])
