"""Tests for the overall-consistency procedure (Section 4.4)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import (
    intersection_closure,
    make_consistent,
    mutual_consistency,
)
from repro.marginals.table import MarginalTable


class TestIntersectionClosure:
    def test_pairwise_intersections_present(self):
        closure = intersection_closure([(0, 1, 2), (1, 2, 3), (2, 3, 4)])
        assert (1, 2) in closure
        assert (2, 3) in closure
        assert (2,) in closure  # intersection of all three

    def test_empty_set_first(self):
        closure = intersection_closure([(0, 1), (2, 3)])
        assert closure[0] == ()

    def test_sorted_by_size(self):
        closure = intersection_closure([(0, 1, 2, 3), (2, 3, 4, 5), (3, 4, 5, 6)])
        sizes = [len(s) for s in closure]
        assert sizes == sorted(sizes)

    def test_views_themselves_excluded(self):
        closure = intersection_closure([(0, 1), (1, 2)])
        assert (0, 1) not in closure
        assert (1, 2) not in closure

    def test_duplicated_view_included(self):
        """Identical views must still be reconciled with each other."""
        closure = intersection_closure([(0, 1), (0, 1)])
        assert (0, 1) in closure

    def test_disjoint_views(self):
        closure = intersection_closure([(0, 1), (2, 3)])
        assert closure == [()]

    def test_closure_under_intersection(self):
        views = [(0, 1, 2, 3), (1, 2, 3, 4), (0, 2, 3, 4), (2, 3, 4, 5)]
        closure = set(intersection_closure(views)) | set(views)
        for a, b in itertools.combinations(closure, 2):
            inter = tuple(sorted(set(a) & set(b)))
            assert inter in closure


class TestMutualConsistency:
    def test_two_tables_agree_after(self, rng):
        t1 = MarginalTable((0, 1), rng.random(4) * 10)
        t2 = MarginalTable((1, 2), rng.random(4) * 10)
        mutual_consistency([t1, t2], (1,))
        assert np.allclose(t1.project((1,)).counts, t2.project((1,)).counts)

    def test_single_table_noop(self, rng):
        t1 = MarginalTable((0, 1), rng.random(4))
        before = t1.counts.copy()
        mutual_consistency([t1], (1,))
        assert np.array_equal(t1.counts, before)

    def test_result_is_average(self, rng):
        t1 = MarginalTable((0, 1), rng.random(4) * 10)
        t2 = MarginalTable((1, 2), rng.random(4) * 10)
        expected = (t1.project((1,)).counts + t2.project((1,)).counts) / 2
        mutual_consistency([t1, t2], (1,))
        assert np.allclose(t1.project((1,)).counts, expected)


class TestMakeConsistent:
    def _noisy_views(self, dataset, blocks, rng, scale=30.0):
        views = []
        for block in blocks:
            table = dataset.marginal(block)
            table.counts = table.counts + rng.laplace(scale=scale, size=table.size)
            views.append(table)
        return views

    def test_all_pairs_consistent(self, small_dataset, rng):
        blocks = [(0, 1, 2, 3), (2, 3, 4, 5), (4, 5, 6, 7), (0, 3, 6, 9)]
        views = self._noisy_views(small_dataset, blocks, rng)
        make_consistent(views)
        for a, b in itertools.combinations(views, 2):
            shared = tuple(sorted(set(a.attrs) & set(b.attrs)))
            assert np.allclose(
                a.project(shared).counts, b.project(shared).counts, atol=1e-6
            )

    def test_totals_equalised(self, small_dataset, rng):
        blocks = [(0, 1), (2, 3), (4, 5)]
        views = self._noisy_views(small_dataset, blocks, rng)
        make_consistent(views)
        totals = [v.total() for v in views]
        assert np.allclose(totals, totals[0])

    def test_consistency_improves_accuracy(self, small_dataset):
        """Averaging across overlapping noisy views reduces error."""
        blocks = [(0, 1, 2), (0, 1, 3), (0, 1, 4), (0, 1, 5)]
        rng_pool = [np.random.default_rng(s) for s in range(30)]
        err_before, err_after = [], []
        true = small_dataset.marginal((0, 1)).counts
        for rng in rng_pool:
            views = self._noisy_views(small_dataset, blocks, rng, scale=50.0)
            err_before.append(
                np.linalg.norm(views[0].project((0, 1)).counts - true)
            )
            make_consistent(views)
            err_after.append(
                np.linalg.norm(views[0].project((0, 1)).counts - true)
            )
        assert np.mean(err_after) < np.mean(err_before)

    def test_exact_views_unchanged(self, small_dataset):
        """Noise-free views are already consistent: a fixpoint."""
        blocks = [(0, 1, 2), (1, 2, 3)]
        views = [small_dataset.marginal(b) for b in blocks]
        originals = [v.counts.copy() for v in views]
        make_consistent(views)
        for view, original in zip(views, originals):
            assert np.allclose(view.counts, original, atol=1e-9)

    def test_idempotent(self, small_dataset, rng):
        blocks = [(0, 1, 2), (1, 2, 3), (0, 2, 4)]
        views = self._noisy_views(small_dataset, blocks, rng)
        make_consistent(views)
        snapshot = [v.counts.copy() for v in views]
        make_consistent(views)
        for view, snap in zip(views, snapshot):
            assert np.allclose(view.counts, snap, atol=1e-8)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_consistency_invariant_random_views(self, seed):
        rng = np.random.default_rng(seed)
        attrs_pool = [(0, 1, 2), (1, 2, 3), (2, 3, 4), (0, 2, 4)]
        views = [
            MarginalTable(a, rng.random(8) * 20 - 5) for a in attrs_pool
        ]
        make_consistent(views)
        for a, b in itertools.combinations(views, 2):
            shared = tuple(sorted(set(a.attrs) & set(b.attrs)))
            assert np.allclose(
                a.project(shared).counts, b.project(shared).counts, atol=1e-6
            )
