"""End-to-end tests for the PriView mechanism and synopsis."""

import itertools

import numpy as np
import pytest

from repro.core.priview import PriView
from repro.covering.design import CoveringDesign
from repro.covering.repository import best_design
from repro.exceptions import PrivacyBudgetError
from repro.metrics.l2 import normalized_l2_error


@pytest.fixture
def design10() -> CoveringDesign:
    """A small t=2 design over d=10 with blocks of 4."""
    return CoveringDesign(
        10,
        4,
        2,
        (
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (0, 4, 8, 9),
            (1, 5, 8, 9),
            (2, 6, 8, 9),
            (3, 7, 8, 9),
            (0, 5, 2, 7),
            (1, 4, 3, 6),
            (0, 6, 1, 7),
            (2, 4, 3, 5),
        ),
    )


class TestFit:
    def test_synopsis_structure(self, small_dataset, design10):
        synopsis = PriView(1.0, design=design10, seed=0).fit(small_dataset)
        assert synopsis.num_views == design10.num_blocks
        assert synopsis.num_attributes == 10
        assert synopsis.epsilon == 1.0
        assert "C_2" in repr(synopsis)

    def test_views_are_consistent(self, small_dataset, design10):
        synopsis = PriView(1.0, design=design10, seed=0).fit(small_dataset)
        for a, b in itertools.combinations(synopsis.views, 2):
            shared = tuple(sorted(set(a.attrs) & set(b.attrs)))
            assert np.allclose(
                a.project(shared).counts, b.project(shared).counts, atol=1e-6
            )

    def test_views_nonnegative_up_to_theta(self, small_dataset, design10):
        synopsis = PriView(
            0.5, design=design10, seed=1, theta=1.0
        ).fit(small_dataset)
        # the trailing consistency pass may reintroduce tiny negatives
        for view in synopsis.views:
            assert view.counts.min() > -50.0

    def test_total_close_to_n(self, small_dataset, design10):
        synopsis = PriView(1.0, design=design10, seed=0).fit(small_dataset)
        assert synopsis.total_count() == pytest.approx(
            small_dataset.num_records, rel=0.05
        )

    def test_noise_free_views_exact(self, small_dataset, design10):
        synopsis = PriView(float("inf"), design=design10, seed=0).fit(
            small_dataset
        )
        for view, block in zip(synopsis.views, design10.blocks):
            assert np.allclose(
                view.counts, small_dataset.marginal(block).counts, atol=1e-6
            )

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            PriView(0.0)

    def test_automatic_design_selection(self, small_dataset):
        synopsis = PriView(1.0, view_width=4, seed=0).fit(small_dataset)
        assert synopsis.design.block_size <= 4
        synopsis.design.validate()

    def test_seed_reproducibility(self, small_dataset, design10):
        s1 = PriView(1.0, design=design10, seed=42).fit(small_dataset)
        s2 = PriView(1.0, design=design10, seed=42).fit(small_dataset)
        for v1, v2 in zip(s1.views, s2.views):
            assert np.array_equal(v1.counts, v2.counts)


class TestQueries:
    def test_covered_marginal_accuracy(self, small_dataset, design10):
        synopsis = PriView(2.0, design=design10, seed=0).fit(small_dataset)
        truth = small_dataset.marginal((0, 1, 2))
        estimate = synopsis.marginal((0, 1, 2))
        err = normalized_l2_error(estimate, truth, small_dataset.num_records)
        assert err < 0.05

    def test_uncovered_marginal_reasonable(self, small_dataset, design10):
        synopsis = PriView(2.0, design=design10, seed=0).fit(small_dataset)
        attrs = (0, 1, 4, 8)
        assert not synopsis.is_covered(attrs)
        truth = small_dataset.marginal(attrs)
        estimate = synopsis.marginal(attrs)
        uniform_err = normalized_l2_error(
            truth, truth.__class__.uniform(attrs, truth.total()),
            small_dataset.num_records,
        )
        err = normalized_l2_error(estimate, truth, small_dataset.num_records)
        assert err < uniform_err  # beats knowing nothing

    def test_beats_direct_method(self, small_dataset, design10):
        """The headline claim, on a small instance."""
        from repro.baselines.direct import DirectMethod

        k, eps = 4, 0.5
        queries = list(itertools.combinations(range(10), k))[:15]
        synopsis = PriView(eps, design=design10, seed=3).fit(small_dataset)
        direct = DirectMethod(eps, k, seed=3).fit(small_dataset)
        n = small_dataset.num_records
        pv_err = np.mean(
            [
                normalized_l2_error(
                    synopsis.marginal(q), small_dataset.marginal(q), n
                )
                for q in queries
            ]
        )
        d_err = np.mean(
            [
                normalized_l2_error(
                    direct.marginal(q), small_dataset.marginal(q), n
                )
                for q in queries
            ]
        )
        assert pv_err < d_err

    def test_any_k_from_one_synopsis(self, small_dataset, design10):
        """The no-commitment-to-k property highlighted in Section 1."""
        synopsis = PriView(1.0, design=design10, seed=0).fit(small_dataset)
        for k in (1, 2, 3, 5):
            attrs = tuple(range(k))
            table = synopsis.marginal(attrs)
            assert table.arity == k

    def test_marginals_plural(self, small_dataset, design10):
        synopsis = PriView(1.0, design=design10, seed=0).fit(small_dataset)
        tables = synopsis.marginals([(0, 1), (2, 3)])
        assert [t.attrs for t in tables] == [(0, 1), (2, 3)]


class TestPipelineVariants:
    @pytest.mark.parametrize("method", ["none", "simple", "global", "ripple"])
    def test_nonnegativity_variants_run(self, small_dataset, design10, method):
        synopsis = PriView(
            0.5, design=design10, nonnegativity=method, seed=0
        ).fit(small_dataset)
        table = synopsis.marginal((0, 1, 4, 8))
        assert np.all(np.isfinite(table.counts))

    def test_no_consistency_pipeline(self, small_dataset, design10):
        synopsis = PriView(
            1.0, design=design10, consistency=False, nonnegativity="none",
            seed=0,
        ).fit(small_dataset)
        table = synopsis.marginal((0, 1, 4, 8), method="lp")
        assert np.all(np.isfinite(table.counts))

    def test_multiple_nonneg_rounds(self, small_dataset, design10):
        synopsis = PriView(
            1.0, design=design10, nonneg_rounds=3, seed=0
        ).fit(small_dataset)
        assert synopsis.metadata["nonneg_rounds"] == 3
