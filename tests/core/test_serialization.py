"""Tests for synopsis persistence."""

import json

import numpy as np
import pytest

from repro.core.priview import PriView
from repro.core.serialization import (
    FORMAT_VERSION,
    jsonable,
    load_synopsis,
    payload_digest,
    save_synopsis,
)
from repro.covering.repository import best_design
from repro.exceptions import (
    DatasetError,
    SynopsisFormatError,
    SynopsisIntegrityError,
)


@pytest.fixture
def synopsis(small_dataset):
    design = best_design(10, 4, 2)
    return PriView(1.0, design=design, seed=5).fit(small_dataset)


class TestRoundTrip:
    def test_views_identical(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "synopsis.npz")
        again = load_synopsis(path)
        assert again.epsilon == synopsis.epsilon
        assert again.num_attributes == synopsis.num_attributes
        assert again.design == synopsis.design
        for a, b in zip(again.views, synopsis.views):
            assert a.attrs == b.attrs
            assert np.array_equal(a.counts, b.counts)

    def test_queries_identical(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "synopsis.npz")
        again = load_synopsis(path)
        attrs = (0, 3, 5, 8)
        assert np.allclose(
            again.marginal(attrs).counts, synopsis.marginal(attrs).counts
        )

    def test_metadata_preserved(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "s.npz")
        assert load_synopsis(path).metadata == synopsis.metadata

    def test_view_meta_round_trips(self, synopsis, tmp_path):
        """Table ``meta`` (solver/convergence telemetry) must survive
        save/load so a served synopsis reports the same diagnostics as
        a freshly fitted one."""
        synopsis.views[0].meta["maxent"] = {
            "iterations": np.int64(17),
            "residual": np.float64(3.5e-10),
            "converged": True,
            "damped": False,
        }
        synopsis.views[1].meta["note"] = "post-processed"
        path = save_synopsis(synopsis, tmp_path / "meta.npz")
        again = load_synopsis(path)
        assert again.views[0].meta == {
            "maxent": {
                "iterations": 17,
                "residual": 3.5e-10,
                "converged": True,
                "damped": False,
            }
        }
        assert again.views[1].meta == {"note": "post-processed"}
        assert all(v.meta == {} for v in again.views[2:])

    def test_loaded_synopsis_reports_same_solver_diagnostics(
        self, synopsis, tmp_path
    ):
        """Solver telemetry of reconstructions from the loaded synopsis
        matches the fitted one's (identical views => identical runs)."""
        path = save_synopsis(synopsis, tmp_path / "diag.npz")
        again = load_synopsis(path)
        attrs = (0, 2, 4, 6, 8)  # 5 attrs cannot fit a size-4 block
        fresh = synopsis.marginal(attrs)
        served = again.marginal(attrs)
        assert served.meta["maxent"] == fresh.meta["maxent"]

    def test_jsonable_coerces_numpy(self):
        blob = jsonable(
            {
                "a": np.float32(1.5),
                "b": np.array([1, 2]),
                "c": (np.bool_(True), None),
                4: "key becomes str",
            }
        )
        assert blob == {
            "a": 1.5, "b": [1, 2], "c": [True, None], "4": "key becomes str",
        }
        json.dumps(blob)  # must be serialisable as-is

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_synopsis(tmp_path / "missing.npz")

    def test_bad_version_rejected(self, synopsis, tmp_path):
        import json

        import numpy as np

        path = save_synopsis(synopsis, tmp_path / "s.npz")
        with np.load(path, allow_pickle=False) as archive:
            payload = {k: archive[k] for k in archive.files}
        header = json.loads(str(payload["header"]))
        header["format_version"] = 99
        payload["header"] = json.dumps(header)
        np.savez_compressed(path, **payload)
        with pytest.raises(DatasetError):
            load_synopsis(path)


def _rewrite_header(path, mutate):
    """Re-pack a saved synopsis with a mutated header (arrays intact)."""
    with np.load(path, allow_pickle=False) as archive:
        payload = {k: archive[k] for k in archive.files}
    header = json.loads(str(payload["header"]))
    mutate(header)
    payload["header"] = json.dumps(header)
    np.savez_compressed(path, **payload)


class TestIntegrity:
    def test_header_records_payload_digest(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "s.npz")
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["header"]))
        assert header["format_version"] == FORMAT_VERSION
        assert header["payload_sha256"] == payload_digest(synopsis.views)

    def test_flipped_byte_raises_typed_error(self, synopsis, tmp_path):
        """The satellite acceptance: flip one byte and loading must
        raise SynopsisIntegrityError — whether the flip lands in the
        compressed header json, the compressed arrays, or the zip
        end-of-central-directory record.  Offsets are derived from the
        zip layout so they land in member *data* (bytes the loader
        actually consumes) regardless of header size."""
        import struct
        import zipfile

        ref_path = save_synopsis(synopsis, tmp_path / "ref.npz")
        reference = ref_path.read_bytes()
        offsets = []
        with zipfile.ZipFile(ref_path) as archive:
            for info in archive.infolist()[:2]:  # header.npy, view_0.npy
                base = info.header_offset
                fname_len, extra_len = struct.unpack_from(
                    "<HH", reference, base + 26
                )
                data_start = base + 30 + fname_len + extra_len
                offsets.append(data_start + info.compress_size // 2)
        offsets.append(len(reference) - 3)
        for offset in offsets:
            path = tmp_path / f"flip{offset}.npz"
            blob = bytearray(reference)
            blob[offset] ^= 0xFF
            path.write_bytes(bytes(blob))
            with pytest.raises(SynopsisIntegrityError):
                load_synopsis(path)

    def test_tampered_counts_fail_digest(self, synopsis, tmp_path):
        """A well-formed file whose counts were altered (digest left
        stale) must fail verification, and load with verify=False."""
        path = save_synopsis(synopsis, tmp_path / "t.npz")
        with np.load(path, allow_pickle=False) as archive:
            payload = {k: archive[k] for k in archive.files}
        tampered = payload["view_0"].copy()
        tampered.flat[0] += 1.0
        payload["view_0"] = tampered
        np.savez_compressed(path, **payload)
        with pytest.raises(SynopsisIntegrityError, match="sha256"):
            load_synopsis(path)
        assert load_synopsis(path, verify=False).views[0].counts.flat[0] == (
            tampered.flat[0]
        )

    def test_v1_file_without_digest_still_loads(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "v1.npz")

        def downgrade(header):
            header["format_version"] = 1
            del header["payload_sha256"]

        _rewrite_header(path, downgrade)
        again = load_synopsis(path)
        assert again.epsilon == synopsis.epsilon


class TestForwardCompat:
    def test_newer_format_raises_clear_error(self, synopsis, tmp_path):
        """A file written by a newer library must fail with an
        explicit forward-compat message, not a KeyError mid-parse."""
        path = save_synopsis(synopsis, tmp_path / "future.npz")
        _rewrite_header(
            path,
            lambda header: header.update(format_version=FORMAT_VERSION + 1),
        )
        with pytest.raises(SynopsisFormatError, match="newer"):
            load_synopsis(path)

    def test_non_integer_version_is_integrity_error(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "mangled.npz")
        _rewrite_header(
            path, lambda header: header.update(format_version="two")
        )
        with pytest.raises(SynopsisIntegrityError):
            load_synopsis(path)

    def test_format_error_is_a_dataset_error(self):
        # callers catching the historical DatasetError keep working
        assert issubclass(SynopsisFormatError, DatasetError)
        assert issubclass(SynopsisIntegrityError, DatasetError)
