"""Tests for synopsis persistence."""

import numpy as np
import pytest

from repro.core.priview import PriView
from repro.core.serialization import load_synopsis, save_synopsis
from repro.covering.repository import best_design
from repro.exceptions import DatasetError


@pytest.fixture
def synopsis(small_dataset):
    design = best_design(10, 4, 2)
    return PriView(1.0, design=design, seed=5).fit(small_dataset)


class TestRoundTrip:
    def test_views_identical(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "synopsis.npz")
        again = load_synopsis(path)
        assert again.epsilon == synopsis.epsilon
        assert again.num_attributes == synopsis.num_attributes
        assert again.design == synopsis.design
        for a, b in zip(again.views, synopsis.views):
            assert a.attrs == b.attrs
            assert np.array_equal(a.counts, b.counts)

    def test_queries_identical(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "synopsis.npz")
        again = load_synopsis(path)
        attrs = (0, 3, 5, 8)
        assert np.allclose(
            again.marginal(attrs).counts, synopsis.marginal(attrs).counts
        )

    def test_metadata_preserved(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "s.npz")
        assert load_synopsis(path).metadata == synopsis.metadata

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_synopsis(tmp_path / "missing.npz")

    def test_bad_version_rejected(self, synopsis, tmp_path):
        import json

        import numpy as np

        path = save_synopsis(synopsis, tmp_path / "s.npz")
        with np.load(path, allow_pickle=False) as archive:
            payload = {k: archive[k] for k in archive.files}
        header = json.loads(str(payload["header"]))
        header["format_version"] = 99
        payload["header"] = json.dumps(header)
        np.savez_compressed(path, **payload)
        with pytest.raises(DatasetError):
            load_synopsis(path)
