"""Tests for synopsis persistence."""

import json

import numpy as np
import pytest

from repro.core.priview import PriView
from repro.core.serialization import jsonable, load_synopsis, save_synopsis
from repro.covering.repository import best_design
from repro.exceptions import DatasetError


@pytest.fixture
def synopsis(small_dataset):
    design = best_design(10, 4, 2)
    return PriView(1.0, design=design, seed=5).fit(small_dataset)


class TestRoundTrip:
    def test_views_identical(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "synopsis.npz")
        again = load_synopsis(path)
        assert again.epsilon == synopsis.epsilon
        assert again.num_attributes == synopsis.num_attributes
        assert again.design == synopsis.design
        for a, b in zip(again.views, synopsis.views):
            assert a.attrs == b.attrs
            assert np.array_equal(a.counts, b.counts)

    def test_queries_identical(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "synopsis.npz")
        again = load_synopsis(path)
        attrs = (0, 3, 5, 8)
        assert np.allclose(
            again.marginal(attrs).counts, synopsis.marginal(attrs).counts
        )

    def test_metadata_preserved(self, synopsis, tmp_path):
        path = save_synopsis(synopsis, tmp_path / "s.npz")
        assert load_synopsis(path).metadata == synopsis.metadata

    def test_view_meta_round_trips(self, synopsis, tmp_path):
        """Table ``meta`` (solver/convergence telemetry) must survive
        save/load so a served synopsis reports the same diagnostics as
        a freshly fitted one."""
        synopsis.views[0].meta["maxent"] = {
            "iterations": np.int64(17),
            "residual": np.float64(3.5e-10),
            "converged": True,
            "damped": False,
        }
        synopsis.views[1].meta["note"] = "post-processed"
        path = save_synopsis(synopsis, tmp_path / "meta.npz")
        again = load_synopsis(path)
        assert again.views[0].meta == {
            "maxent": {
                "iterations": 17,
                "residual": 3.5e-10,
                "converged": True,
                "damped": False,
            }
        }
        assert again.views[1].meta == {"note": "post-processed"}
        assert all(v.meta == {} for v in again.views[2:])

    def test_loaded_synopsis_reports_same_solver_diagnostics(
        self, synopsis, tmp_path
    ):
        """Solver telemetry of reconstructions from the loaded synopsis
        matches the fitted one's (identical views => identical runs)."""
        path = save_synopsis(synopsis, tmp_path / "diag.npz")
        again = load_synopsis(path)
        attrs = (0, 2, 4, 6, 8)  # 5 attrs cannot fit a size-4 block
        fresh = synopsis.marginal(attrs)
        served = again.marginal(attrs)
        assert served.meta["maxent"] == fresh.meta["maxent"]

    def test_jsonable_coerces_numpy(self):
        blob = jsonable(
            {
                "a": np.float32(1.5),
                "b": np.array([1, 2]),
                "c": (np.bool_(True), None),
                4: "key becomes str",
            }
        )
        assert blob == {
            "a": 1.5, "b": [1, 2], "c": [True, None], "4": "key becomes str",
        }
        json.dumps(blob)  # must be serialisable as-is

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_synopsis(tmp_path / "missing.npz")

    def test_bad_version_rejected(self, synopsis, tmp_path):
        import json

        import numpy as np

        path = save_synopsis(synopsis, tmp_path / "s.npz")
        with np.load(path, allow_pickle=False) as archive:
            payload = {k: archive[k] for k in archive.files}
        header = json.loads(str(payload["header"]))
        header["format_version"] = 99
        payload["header"] = json.dumps(header)
        np.savez_compressed(path, **payload)
        with pytest.raises(DatasetError):
            load_synopsis(path)
