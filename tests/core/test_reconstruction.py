"""Tests for the reconstruction solvers (Section 4.3)."""

import numpy as np
import pytest

from repro.core.consistency import make_consistent
from repro.core.reconstruction import (
    RECONSTRUCTION_METHODS,
    reconstruct,
)
from repro.core.reconstruction.constraints import extract_constraints
from repro.core.reconstruction.least_squares import least_squares
from repro.core.reconstruction.linear_program import linear_program
from repro.core.reconstruction.maxent import maxent, maxent_dual
from repro.exceptions import ReconstructionError
from repro.marginals.table import MarginalTable


@pytest.fixture
def consistent_views(small_dataset):
    views = [
        small_dataset.marginal(b)
        for b in [(0, 1, 2, 3), (2, 3, 4, 5), (4, 5, 6, 7), (0, 4, 8, 9)]
    ]
    make_consistent(views)
    return views


class TestDispatcher:
    def test_unknown_method(self, consistent_views):
        with pytest.raises(ReconstructionError):
            reconstruct(consistent_views, (0, 1), method="nope")

    def test_covered_query_is_projection(self, small_dataset, consistent_views):
        table = reconstruct(consistent_views, (2, 3))
        assert np.allclose(
            table.counts, consistent_views[0].project((2, 3)).counts
        )

    @pytest.mark.parametrize("method", RECONSTRUCTION_METHODS)
    def test_all_methods_return_valid_tables(self, consistent_views, method):
        table = reconstruct(consistent_views, (1, 2, 4, 8), method=method)
        assert table.attrs == (1, 2, 4, 8)
        assert table.counts.min() >= -1e-6
        assert table.total() == pytest.approx(
            consistent_views[0].total(), rel=0.05
        )


class TestMaxent:
    def test_no_constraints_uniform(self):
        table = maxent([], (0, 1), total=100.0)
        assert np.allclose(table.counts, 25.0)

    def test_satisfies_constraints(self, consistent_views):
        target = (1, 2, 4, 8)
        constraints = extract_constraints(consistent_views, target)
        table = maxent(constraints, target, consistent_views[0].total())
        for c in constraints:
            assert np.allclose(
                table.project(c.attrs).counts, np.maximum(c.target, 0),
                atol=1e-4 * table.total(),
            )

    def test_independent_attributes_product_form(self):
        """With only singleton constraints, maxent is the product
        distribution — the defining property of maximum entropy."""
        c1 = MarginalTable((0,), np.array([30.0, 70.0]))
        c2 = MarginalTable((5,), np.array([80.0, 20.0]))
        views = [c1, c2]
        table = reconstruct(views, (0, 5), method="maxent")
        expected = np.array(
            [0.3 * 0.8, 0.7 * 0.8, 0.3 * 0.2, 0.7 * 0.2]
        ) * 100.0
        assert np.allclose(table.counts, expected, atol=1e-6)

    def test_matches_dual_solver(self, consistent_views):
        target = (1, 2, 4, 8)
        constraints = extract_constraints(consistent_views, target)
        total = consistent_views[0].total()
        primal = maxent(constraints, target, total)
        dual = maxent_dual(constraints, target, total)
        assert np.allclose(
            primal.normalized(), dual.normalized(), atol=2e-4
        )

    def test_exact_recovery_of_product_data(self, rng):
        """IID attributes: pair constraints determine any marginal."""
        from repro.marginals.dataset import BinaryDataset

        probs = np.array([0.2, 0.5, 0.8, 0.4])
        data = (rng.random((40_000, 4)) < probs).astype(np.uint8)
        ds = BinaryDataset(data)
        views = [ds.marginal((0, 1)), ds.marginal((2, 3))]
        table = reconstruct(views, (0, 2), method="maxent")
        truth = ds.marginal((0, 2))
        err = np.abs(table.counts - truth.counts).max() / ds.num_records
        assert err < 0.01  # only sampling correlation remains

    def test_handles_slightly_inconsistent_targets(self):
        """Damped fallback: conflicting raw constraints still solve."""
        c1 = MarginalTable((0,), np.array([60.0, 40.0]))
        c2 = MarginalTable((0, 1), np.array([20.0, 40.0, 25.0, 15.0]))
        # c2 projects onto (0,) as [45, 55]: conflicts with c1
        constraints = extract_constraints(
            [c1, c2], (0, 1), keep_maximal_only=False
        )
        table = maxent(constraints, (0, 1), 100.0)
        assert np.all(np.isfinite(table.counts))
        assert table.counts.min() >= 0


class TestLeastSquares:
    def test_satisfies_constraints(self, consistent_views):
        target = (1, 2, 4, 8)
        constraints = extract_constraints(consistent_views, target)
        table = least_squares(constraints, target, consistent_views[0].total())
        for c in constraints:
            assert np.allclose(
                table.project(c.attrs).counts, c.target,
                atol=1e-3 * max(1.0, table.total()),
            )

    def test_minimum_norm_among_solutions(self):
        """With one marginal constraint the min-norm completion splits
        each constrained count uniformly."""
        c = MarginalTable((0,), np.array([60.0, 40.0]))
        table = reconstruct([c], (0, 1), method="lsq")
        assert np.allclose(table.counts, [30.0, 20.0, 30.0, 20.0])

    def test_nonnegativity_enforced(self):
        constraints = extract_constraints(
            [MarginalTable((0,), np.array([-30.0, 130.0]))],
            (0, 1),
            keep_maximal_only=False,
        )
        table = least_squares(constraints, (0, 1), 100.0)
        assert table.counts.min() >= -1e-9


class TestLinearProgram:
    def test_consistent_constraints_fit_exactly(self, consistent_views):
        target = (1, 2, 4, 8)
        constraints = extract_constraints(consistent_views, target)
        table = linear_program(constraints, target, consistent_views[0].total())
        worst = max(
            np.abs(table.project(c.attrs).counts - c.target).max()
            for c in constraints
        )
        assert worst <= 1e-3 * max(1.0, table.total())

    def test_accepts_inconsistent_constraints(self):
        c1 = MarginalTable((0,), np.array([60.0, 40.0]))
        c2 = MarginalTable((0,), np.array([50.0, 50.0]))
        constraints = extract_constraints(
            [c1, c2], (0, 1), keep_maximal_only=False
        )
        table = linear_program(constraints, (0, 1), 100.0)
        assert table.counts.min() >= 0


class TestMaxentTelemetry:
    """The solver's convergence record rides on the returned table."""

    def test_converged_fit_reports_meta(self, consistent_views):
        target = (1, 2, 4, 8)
        constraints = extract_constraints(consistent_views, target)
        table = maxent(constraints, target, consistent_views[0].total())
        meta = table.meta["maxent"]
        assert meta["converged"] is True
        assert meta["iterations"] >= 1
        assert meta["residual"] < 1e-9
        assert meta["damped"] is False

    def test_no_constraints_meta_trivial(self):
        table = maxent([], (0, 1), total=100.0)
        assert table.meta["maxent"] == {
            "iterations": 0,
            "residual": 0.0,
            "converged": True,
            "damped": False,
        }

    def test_inconsistent_targets_flag_damped_fallback(self):
        c1 = MarginalTable((0,), np.array([60.0, 40.0]))
        c2 = MarginalTable((0, 1), np.array([20.0, 40.0, 25.0, 15.0]))
        constraints = extract_constraints(
            [c1, c2], (0, 1), keep_maximal_only=False
        )
        table = maxent(constraints, (0, 1), 100.0)
        meta = table.meta["maxent"]
        assert meta["damped"] is True
        assert meta["iterations"] > 1
        assert np.isfinite(meta["residual"])

    def test_dual_solver_reports_meta(self, consistent_views):
        target = (1, 2, 4, 8)
        constraints = extract_constraints(consistent_views, target)
        table = maxent_dual(constraints, target, consistent_views[0].total())
        meta = table.meta["maxent"]
        assert meta["converged"] is True
        assert meta["iterations"] >= 1

    def test_synopsis_marginal_exposes_convergence(self, small_dataset):
        """End to end: callers can inspect solver telemetry, not just values.

        With noisy views convergence is not guaranteed (that is why the
        telemetry exists), so assert the report's shape, not its verdict.
        """
        from repro.core.priview import PriView
        from repro.covering.repository import best_design

        design = best_design(10, 4, 2)
        synopsis = PriView(1.0, design=design, seed=0).fit(small_dataset)
        uncovered = next(
            attrs
            for attrs in [(0, 1, 4, 7, 9), (0, 2, 5, 8), (1, 3, 6, 9)]
            if not synopsis.is_covered(attrs)
        )
        table = synopsis.marginal(uncovered)
        meta = table.meta["maxent"]
        assert meta["iterations"] >= 1
        assert np.isfinite(meta["residual"])
        assert isinstance(meta["converged"], bool)
