"""Property tests for the residual (ReM) reconstruction solver.

The harness randomizes covering designs, datasets and noise draws and
pins the closed-form residual solver against the things that must hold
regardless of the draw:

* invariants — non-negativity and exact total preservation;
* exact recovery — a truth table whose Walsh–Hadamard support is
  confined to the determined masks comes back bit-exact from its own
  noiseless projections;
* agreement — residual and maxent answer dense mildly-biased workloads
  within tolerance of each other (they optimise different completions,
  so agreement is approximate by design);
* batching — the stacked solvers match their one-at-a-time siblings;
* degenerate bases — empty and full-domain attribute sets are explicit
  everywhere (solver, front door, synopsis).
"""

import numpy as np
import pytest

from repro.core.consistency import make_consistent
from repro.core.priview import PriView
from repro.core.reconstruction import (
    RECONSTRUCTION_METHODS,
    extract_constraints,
    fwht,
    maxent,
    maxent_batch,
    project_to_simplex,
    reconstruct,
    reconstruct_batch,
    residual,
    residual_batch,
)
from repro.covering.design import CoveringDesign
from repro.exceptions import ReconstructionError
from repro.marginals.attrs import AttrSet
from repro.marginals.dataset import BinaryDataset
from repro.marginals.projection import embedding_masks, subset_positions
from repro.marginals.table import MarginalTable


def _dense_truth(rng, d, n=4000):
    """A correlated, dense table (mild per-attribute biases)."""
    probs = rng.uniform(0.3, 0.7, size=d)
    types = rng.integers(0, 3, n)
    shift = rng.uniform(-0.15, 0.15, size=(3, d))
    p = np.clip(probs[None, :] + shift[types], 0.05, 0.95)
    data = (rng.uniform(size=(n, d)) < p).astype(np.int64)
    cells = np.zeros(1 << d)
    np.add.at(cells, (data * (1 << np.arange(d))).sum(axis=1), 1.0)
    return MarginalTable(tuple(range(d)), cells)


def _random_blocks(rng, d, block_size, num_blocks):
    """Random size-``block_size`` blocks; every attribute appears."""
    blocks = []
    while True:
        blocks = [
            tuple(sorted(rng.choice(d, size=block_size, replace=False)))
            for _ in range(num_blocks)
        ]
        if len({a for b in blocks for a in b}) == d:
            return blocks


def _views_of(truth, blocks):
    return [truth.project(AttrSet(b)) for b in blocks]


class TestWalshHadamard:
    def test_involution(self, rng):
        a = rng.normal(size=(5, 32))
        assert np.allclose(fwht(fwht(a)), 32 * a)

    def test_matches_definition(self, rng):
        a = rng.normal(size=8)
        direct = np.array([
            sum(
                (-1) ** bin(m & x).count("1") * a[x]
                for x in range(8)
            )
            for m in range(8)
        ])
        assert np.allclose(fwht(a), direct)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ReconstructionError):
            fwht(np.ones(6))

    def test_embedding_masks_invert_projection(self, rng):
        """The coefficients a sub-marginal determines really are the
        transform of that sub-marginal: theta_full[masks] == phi_sub."""
        k = 4
        table = rng.uniform(1.0, 5.0, size=1 << k)
        target = AttrSet(range(k))
        sub = AttrSet((1, 3))
        positions = subset_positions(target, sub)
        full = MarginalTable(target, table)
        phi_sub = fwht(full.project(sub).counts)
        theta_full = fwht(table)
        assert np.allclose(theta_full[embedding_masks(k, positions)], phi_sub)


class TestSimplexProjection:
    def test_feasible_rows_unchanged(self, rng):
        rows = rng.uniform(0.0, 2.0, size=(6, 8))
        rows *= (10.0 / rows.sum(axis=-1))[:, None]
        assert np.allclose(project_to_simplex(rows, 10.0), rows)

    def test_invariants_random(self, rng):
        rows = rng.normal(size=(20, 16)) * 3.0
        out = project_to_simplex(rows, 7.0)
        assert out.min() >= 0.0
        assert np.allclose(out.sum(axis=-1), 7.0)

    def test_is_euclidean_projection(self, rng):
        """No feasible point is closer than the projection (spot-check
        against random feasible candidates)."""
        row = rng.normal(size=(1, 8)) * 2.0
        out = project_to_simplex(row, 5.0)
        d_out = np.sum((out - row) ** 2)
        for _ in range(50):
            cand = rng.dirichlet(np.ones(8)) * 5.0
            assert d_out <= np.sum((cand - row) ** 2) + 1e-9

    def test_nonpositive_total_gives_zero_table(self):
        out = project_to_simplex(np.array([[1.0, -2.0, 3.0]]), -4.0)
        assert np.allclose(out, 0.0)


class TestInvariants:
    """Non-negativity and total preservation under randomized draws."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_noisy_views_random_designs(self, seed):
        rng = np.random.default_rng(seed)
        d = rng.integers(6, 9)
        truth = _dense_truth(rng, d)
        blocks = _random_blocks(rng, d, 3, 5)
        views = _views_of(truth, blocks)
        # Raw noise draw: no consistency pass, no clipping — the
        # solver itself must normalise and project.
        for v in views:
            v.counts += rng.normal(0.0, 25.0, size=v.counts.shape)
        total = float(np.mean([v.total() for v in views]))
        k = int(rng.integers(2, min(d, 5)))
        target = AttrSet(sorted(rng.choice(d, size=k, replace=False)))
        table = reconstruct(
            views, target, method="residual",
            use_covering_view=False, total=total,
        )
        assert table.counts.min() >= 0.0
        assert table.total() == pytest.approx(max(total, 0.0), abs=1e-6)
        assert np.all(np.isfinite(table.counts))
        meta = table.meta["residual"]
        assert 1 <= meta["determined"] <= meta["coefficients"]

    def test_projected_flag_tracks_negative_mass(self, rng):
        views = [
            MarginalTable((0, 1), np.array([50.0, -10.0, 40.0, 20.0])),
            MarginalTable((1, 2), np.array([30.0, 30.0, 20.0, 20.0])),
        ]
        table = reconstruct(
            views, (0, 1, 2), method="residual",
            use_covering_view=False, total=100.0,
        )
        assert table.counts.min() >= 0.0
        assert table.total() == pytest.approx(100.0)
        assert table.meta["residual"]["projected"]
        assert table.meta["residual"]["negative_mass"] > 0.0


class TestExactRecovery:
    """Noiseless synopses whose information determines the target."""

    def test_covered_truth_recovered_bitwise(self, rng):
        truth = _dense_truth(rng, 6)
        views = _views_of(truth, [(0, 1, 2), (2, 3, 4), (3, 4, 5)])
        for block in [(0, 1, 2), (2, 3, 4), (3, 4, 5)]:
            got = reconstruct(
                views, block, method="residual", use_covering_view=False,
            )
            assert np.allclose(got.counts, truth.project(AttrSet(block)).counts)

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_fourier_limited_truth_recovered(self, seed):
        """Build a truth table whose WH support sits entirely inside
        the masks the views determine; residual must then be exact even
        though no single view covers the target."""
        rng = np.random.default_rng(seed)
        k = 4
        target = AttrSet(range(k))
        sub_blocks = [(0, 1), (1, 2), (2, 3)]
        determined = sorted({
            int(m)
            for b in sub_blocks
            for m in embedding_masks(k, subset_positions(target, AttrSet(b)))
        })
        total = 1000.0
        theta = np.zeros(1 << k)
        theta[determined] = rng.normal(0.0, 30.0, size=len(determined))
        theta[0] = total
        cells = fwht(theta) / (1 << k)
        # Shrink the AC part until the table is strictly positive, so
        # the simplex projection is the identity and recovery is exact.
        while cells.min() <= 0:
            theta[1:] *= 0.5
            cells = fwht(theta) / (1 << k)
        truth = MarginalTable(target, cells)
        views = [truth.project(AttrSet(b)) for b in sub_blocks]
        got = reconstruct(
            views, target, method="residual",
            use_covering_view=False, total=total,
        )
        assert np.allclose(got.counts, truth.counts, atol=1e-8)
        assert not got.meta["residual"]["projected"]

    def test_matches_min_norm_completion(self, rng):
        """Before clipping, residual is the minimum-L2-norm solution —
        on instances where nothing goes negative it must match the
        least-squares solver exactly."""
        truth = _dense_truth(rng, 6)
        views = _views_of(truth, [(0, 1, 2), (2, 3, 4), (4, 5, 0), (1, 3, 5)])
        total = float(truth.total())
        target = AttrSet((0, 2, 3, 5))
        res = reconstruct(
            views, target, method="residual",
            use_covering_view=False, total=total,
        )
        lsq = reconstruct(
            views, target, method="lsq",
            use_covering_view=False, total=total,
        )
        if not res.meta["residual"]["projected"]:
            assert np.allclose(res.counts, lsq.counts, atol=1e-6)


class TestAgainstMaxent:
    @pytest.mark.parametrize("seed", [11, 12, 13, 14])
    def test_tolerable_disagreement_random_workloads(self, seed):
        """Residual and maxent complete the same constraints different
        ways; on dense mildly-biased data they must stay within a
        modest relative-L1 band of each other."""
        rng = np.random.default_rng(seed)
        d = 7
        truth = _dense_truth(rng, d)
        blocks = _random_blocks(rng, d, 3, 6)
        views = _views_of(truth, blocks)
        for v in views:
            v.counts += rng.normal(0.0, 10.0, size=v.counts.shape)
        make_consistent(views)
        total = float(np.mean([v.total() for v in views]))
        for _ in range(3):
            k = int(rng.integers(2, 5))
            target = AttrSet(sorted(rng.choice(d, size=k, replace=False)))
            res = reconstruct(
                views, target, method="residual",
                use_covering_view=False, total=total,
            )
            ment = reconstruct(
                views, target, method="maxent",
                use_covering_view=False, total=total,
            )
            rel_l1 = np.abs(res.counts - ment.counts).sum() / total
            assert rel_l1 < 0.25
            # and they satisfy the shared determined marginals alike
            for c in extract_constraints(views, target):
                want = np.maximum(np.asarray(c.target), 0.0)
                want *= total / max(want.sum(), 1e-12)
                got = res.project(c.attrs).counts
                assert np.abs(got - want).sum() / total < 0.05


class TestBatching:
    def test_residual_batch_matches_single(self, rng):
        truth = _dense_truth(rng, 7)
        blocks = _random_blocks(rng, 7, 3, 6)
        views = _views_of(truth, blocks)
        total = float(truth.total())
        targets = [
            AttrSet(sorted(rng.choice(7, size=k, replace=False)))
            for k in (2, 3, 3, 4, 4, 2)
        ]
        constraint_lists = [
            extract_constraints(views, t) for t in targets
        ]
        batched = residual_batch(constraint_lists, targets, total)
        for cons, target, table in zip(constraint_lists, targets, batched):
            single = residual(cons, target, total)
            assert table.attrs == target
            assert np.allclose(table.counts, single.counts)
            assert table.meta["residual"] == single.meta["residual"]

    def test_maxent_batch_matches_single(self, rng):
        truth = _dense_truth(rng, 7)
        views = _views_of(truth, _random_blocks(rng, 7, 3, 6))
        total = float(truth.total())
        targets = [
            AttrSet(sorted(rng.choice(7, size=k, replace=False)))
            for k in (2, 3, 4, 4)
        ]
        constraint_lists = [extract_constraints(views, t) for t in targets]
        batched = maxent_batch(constraint_lists, targets, total)
        for cons, target, table in zip(constraint_lists, targets, batched):
            single = maxent(cons, target, total)
            assert np.abs(table.counts - single.counts).max() < 1e-6 * total
            assert table.meta["maxent"]["converged"]

    def test_length_mismatch_raises(self):
        with pytest.raises(ReconstructionError):
            residual_batch([[]], [(0,), (1,)], 10.0)

    @pytest.mark.parametrize("method", RECONSTRUCTION_METHODS)
    def test_front_door_batch_matches_loop(self, rng, method):
        truth = _dense_truth(rng, 6)
        views = _views_of(truth, [(0, 1, 2), (2, 3, 4), (4, 5, 0)])
        workload = [(0, 1), (1, 3), (0, 3, 5), (), (1, 2, 4, 5)]
        batched = reconstruct_batch(views, workload, method=method)
        for attrs, table in zip(workload, batched):
            single = reconstruct(views, attrs, method=method)
            assert table.attrs == AttrSet(attrs)
            assert np.allclose(table.counts, single.counts, atol=1e-6)


class TestDegenerateBases:
    """Empty and full-domain attribute sets, explicitly (regression)."""

    @pytest.mark.parametrize("method", RECONSTRUCTION_METHODS)
    @pytest.mark.parametrize("use_cover", [True, False])
    def test_empty_target(self, rng, method, use_cover):
        truth = _dense_truth(rng, 6)
        views = _views_of(truth, [(0, 1, 2), (2, 3, 4), (4, 5, 0)])
        table = reconstruct(
            views, (), method=method, use_covering_view=use_cover,
        )
        assert table.attrs == ()
        assert table.counts.shape == (1,)
        assert table.total() == pytest.approx(truth.total())

    @pytest.mark.parametrize("method", ["residual", "maxent", "lsq"])
    def test_full_domain_target(self, rng, method):
        truth = _dense_truth(rng, 6)
        views = _views_of(truth, [(0, 1, 2), (2, 3, 4), (4, 5, 0)])
        table = reconstruct(
            views, tuple(range(6)), method=method, use_covering_view=False,
        )
        assert table.attrs == tuple(range(6))
        assert table.counts.min() >= -1e-6
        assert table.total() == pytest.approx(truth.total(), rel=1e-6)

    def test_empty_target_no_views(self):
        table = reconstruct([], (), method="residual")
        assert table.total() == 0.0

    def test_synopsis_degenerate_sets(self, rng):
        dataset = BinaryDataset.random(500, 6, density=0.5, rng=rng)
        design = CoveringDesign(
            6, 3, 1, ((0, 1, 2), (2, 3, 4), (3, 4, 5))
        )
        synopsis = PriView(5.0, design=design, seed=2).fit(dataset)
        empty = synopsis.marginal((), method="residual")
        assert empty.total() == pytest.approx(synopsis.total_count())
        full = synopsis.marginal(tuple(range(6)), method="residual")
        assert full.counts.min() >= 0.0
        assert full.total() == pytest.approx(synopsis.total_count(), rel=1e-6)
        out = synopsis.marginals(
            [(), (0, 1), tuple(range(6)), ()], method="residual"
        )
        assert [t.attrs for t in out] == [
            (), (0, 1), tuple(range(6)), ()
        ]
        assert out[0] is not out[3]
        assert out[0].total() == pytest.approx(out[3].total())


class TestFaults:
    def test_nan_view_raises_typed_error(self):
        views = [
            MarginalTable((0, 1), np.array([np.nan, 1.0, 2.0, 3.0])),
            MarginalTable((1, 2), np.ones(4)),
        ]
        with pytest.raises(ReconstructionError):
            reconstruct(
                views, (0, 1, 2), method="residual",
                use_covering_view=False, total=10.0,
            )

    def test_no_constraints_is_uniform_after_projection(self):
        table = residual([], (0, 1), total=100.0)
        assert np.allclose(table.counts, 25.0)
        assert table.meta["residual"]["determined"] == 1
