"""Tests for the Ripple / Simple / Global non-negativity procedures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonnegativity import (
    apply_nonnegativity,
    global_redistribute,
    ripple,
    simple_clamp,
)
from repro.exceptions import ReconstructionError
from repro.marginals.table import MarginalTable


class TestRipple:
    def test_preserves_total(self, rng):
        counts = rng.laplace(scale=10, size=16) + 5
        table = MarginalTable((0, 1, 2, 3), counts.copy())
        ripple(table, theta=0.5)
        assert table.total() == pytest.approx(counts.sum(), abs=1e-8)

    def test_no_cell_below_minus_theta(self, rng):
        theta = 0.5
        table = MarginalTable((0, 1, 2), rng.laplace(scale=20, size=8) + 15)
        ripple(table, theta=theta)
        assert table.counts.min() >= -theta - 1e-9

    def test_nonpositive_total_zeroed(self):
        """A table with no positive mass carries no counts: zeroed."""
        table = MarginalTable((0, 1), np.array([-5.0, -1.0, 2.0, -4.0]))
        ripple(table, theta=0.5)
        assert np.array_equal(table.counts, np.zeros(4))

    def test_nonnegative_table_untouched(self):
        table = MarginalTable((0, 1), np.array([1.0, 2.0, 3.0, 4.0]))
        passes = ripple(table)
        assert passes == 0
        assert np.array_equal(table.counts, [1.0, 2.0, 3.0, 4.0])

    def test_single_negative_spreads_to_neighbours(self):
        table = MarginalTable((0, 1), np.array([-8.0, 10.0, 10.0, 10.0]))
        ripple(table, theta=1.0)
        # cell 0 zeroed; neighbours (1 and 2) each absorb -4
        assert table.counts[0] == 0.0
        assert table.counts[1] == pytest.approx(6.0)
        assert table.counts[2] == pytest.approx(6.0)
        assert table.counts[3] == pytest.approx(10.0)

    def test_theta_must_be_positive(self):
        table = MarginalTable((0,), np.array([-1.0, 2.0]))
        with pytest.raises(ReconstructionError):
            ripple(table, theta=0.0)

    def test_zero_arity_table(self):
        table = MarginalTable((), np.array([-5.0]))
        assert ripple(table) == 0

    @given(
        seed=st.integers(0, 10_000),
        theta=st.floats(0.1, 5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants_random(self, seed, theta):
        rng = np.random.default_rng(seed)
        counts = rng.laplace(scale=15, size=32) + 10  # positive total
        if counts.sum() <= 0:
            counts += 1 - counts.sum() / counts.size
        table = MarginalTable((0, 1, 2, 3, 4), counts.copy())
        ripple(table, theta=theta)
        assert table.total() == pytest.approx(counts.sum(), abs=1e-6)
        assert table.counts.min() >= -theta - 1e-9


class TestSimpleClamp:
    def test_clamps(self):
        table = MarginalTable((0,), np.array([-3.0, 5.0]))
        simple_clamp(table)
        assert np.array_equal(table.counts, [0.0, 5.0])

    def test_biases_total_upward(self):
        """The systematic bias the paper warns about."""
        table = MarginalTable((0,), np.array([-3.0, 5.0]))
        simple_clamp(table)
        assert table.total() > 2.0


class TestGlobalRedistribute:
    def test_preserves_total_when_positive_mass(self):
        counts = np.array([-4.0, 10.0, 6.0, 2.0])
        table = MarginalTable((0, 1), counts.copy())
        global_redistribute(table)
        assert table.total() == pytest.approx(counts.sum())
        assert table.counts.min() >= 0.0

    def test_everything_negative(self):
        table = MarginalTable((0,), np.array([-1.0, -2.0]))
        global_redistribute(table)
        assert np.array_equal(table.counts, [0.0, 0.0])

    def test_iterates_cascading_negatives(self, rng):
        counts = rng.laplace(scale=10, size=64)
        table = MarginalTable(tuple(range(6)), counts.copy())
        global_redistribute(table)
        assert table.counts.min() >= -1e-9


class TestDispatch:
    def test_none_is_noop(self):
        table = MarginalTable((0,), np.array([-1.0, 2.0]))
        apply_nonnegativity(table, "none")
        assert np.array_equal(table.counts, [-1.0, 2.0])

    @pytest.mark.parametrize("method", ["simple", "global", "ripple"])
    def test_all_methods_remove_deep_negatives(self, method, rng):
        table = MarginalTable((0, 1, 2), rng.laplace(scale=10, size=8) + 8)
        apply_nonnegativity(table, method, theta=0.5)
        threshold = -0.5 if method == "ripple" else 0.0
        assert table.counts.min() >= threshold - 1e-9

    def test_unknown_method(self):
        table = MarginalTable((0,), np.zeros(2))
        with pytest.raises(ReconstructionError):
            apply_nonnegativity(table, "magic")
