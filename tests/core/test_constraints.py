"""Tests for constraint extraction (Section 4.3 preliminaries)."""

import numpy as np
import pytest

from repro.core.reconstruction.constraints import (
    build_constraint_system,
    covering_view,
    extract_constraints,
)
from repro.exceptions import ReconstructionError
from repro.marginals.table import MarginalTable


def _views(dataset, blocks):
    return [dataset.marginal(b) for b in blocks]


class TestExtractConstraints:
    def test_disjoint_views_rejected(self, small_dataset):
        views = _views(small_dataset, [(0, 1), (2, 3)])
        with pytest.raises(ReconstructionError):
            extract_constraints(views, (4, 5))

    def test_intersections_found(self, small_dataset):
        views = _views(small_dataset, [(0, 1, 2), (2, 3, 4), (5, 6, 7)])
        constraints = extract_constraints(views, (1, 2, 3))
        attrs = {c.attrs for c in constraints}
        assert (1, 2) in attrs
        assert (2, 3) in attrs
        assert all(set(a) <= {1, 2, 3} for a in attrs)

    def test_nested_constraints_dropped(self, small_dataset):
        views = _views(small_dataset, [(0, 1, 2), (1, 9, 8)])
        constraints = extract_constraints(views, (0, 1, 2))
        attrs = {c.attrs for c in constraints}
        # (1,) from the second view is nested in (0,1,2) from the first
        assert attrs == {(0, 1, 2)}

    def test_keep_all_when_requested(self, small_dataset):
        views = _views(small_dataset, [(0, 1, 2), (1, 9, 8)])
        constraints = extract_constraints(
            views, (0, 1, 2), keep_maximal_only=False
        )
        assert {c.attrs for c in constraints} == {(0, 1, 2), (1,)}

    def test_duplicate_attrs_averaged(self):
        v1 = MarginalTable((0, 1), np.array([1.0, 2.0, 3.0, 4.0]))
        v2 = MarginalTable((1, 2), np.array([3.0, 3.0, 2.0, 2.0]))
        constraints = extract_constraints([v1, v2], (1, 5))
        (c,) = constraints
        assert c.attrs == (1,)
        expected = (v1.project((1,)).counts + v2.project((1,)).counts) / 2
        assert np.allclose(c.target, expected)

    def test_targets_match_projection(self, small_dataset):
        views = _views(small_dataset, [(0, 1, 2, 3)])
        (c,) = extract_constraints(views, (2, 3, 4, 5))
        assert c.attrs == (2, 3)
        assert np.allclose(c.target, views[0].project((2, 3)).counts)


class TestCoveringView:
    def test_found(self, small_dataset):
        views = _views(small_dataset, [(0, 1, 2), (3, 4, 5, 6)])
        cover = covering_view(views, (4, 6))
        assert cover is views[1]

    def test_not_found(self, small_dataset):
        views = _views(small_dataset, [(0, 1, 2)])
        assert covering_view(views, (1, 3)) is None


class TestConstraintSystem:
    def test_system_consistent_with_truth(self, small_dataset):
        """The true marginal satisfies the noise-free system exactly."""
        views = _views(small_dataset, [(0, 1, 2), (2, 3, 4)])
        target_attrs = (1, 2, 3)
        constraints = extract_constraints(views, target_attrs)
        matrix, rhs = build_constraint_system(constraints, target_attrs)
        truth = small_dataset.marginal(target_attrs).counts
        assert np.allclose(matrix @ truth, rhs)

    def test_shapes(self, small_dataset):
        views = _views(small_dataset, [(0, 1, 2), (2, 3, 4)])
        constraints = extract_constraints(views, (1, 2, 3))
        matrix, rhs = build_constraint_system(constraints, (1, 2, 3))
        assert matrix.shape[1] == 8
        assert matrix.shape[0] == rhs.size
