"""Tests for view selection (Section 4.5)."""

import numpy as np
import pytest

from repro.core.view_selection import (
    choose_strength,
    noisy_record_count,
    priview_noise_error,
    select_views,
)
from repro.exceptions import DesignError


class TestNoiseError:
    def test_paper_kosarak_values(self):
        """The Section 4.5 table: 0.00047 / 0.0011 / 0.0026."""
        args = (900_000, 32, 1.0, 8)
        assert priview_noise_error(*args, 20) == pytest.approx(0.00047, abs=5e-5)
        assert priview_noise_error(*args, 106) == pytest.approx(0.0011, abs=1e-4)
        assert priview_noise_error(*args, 620) == pytest.approx(0.0026, abs=2e-4)

    def test_scales_inverse_epsilon(self):
        e1 = priview_noise_error(1e6, 32, 1.0, 8, 20)
        e01 = priview_noise_error(1e6, 32, 0.1, 8, 20)
        assert e01 == pytest.approx(10 * e1)

    def test_scales_inverse_n(self):
        big = priview_noise_error(1e6, 32, 1.0, 8, 20)
        small = priview_noise_error(1e5, 32, 1.0, 8, 20)
        assert small == pytest.approx(10 * big)

    def test_scales_sqrt_w(self):
        w1 = priview_noise_error(1e6, 32, 1.0, 8, 25)
        w4 = priview_noise_error(1e6, 32, 1.0, 8, 100)
        assert w4 == pytest.approx(2 * w1)

    def test_invalid_n(self):
        with pytest.raises(DesignError):
            priview_noise_error(0, 32, 1.0, 8, 20)


class TestChooseStrength:
    def test_kosarak_eps1_picks_t3(self):
        """The paper's worked example: eps=1.0 -> t=3."""
        assert choose_strength(900_000, 32, 1.0) == 3

    def test_kosarak_eps01_picks_t2(self):
        """And eps=0.1 -> t=2."""
        assert choose_strength(900_000, 32, 0.1) == 2

    def test_tiny_n_falls_back_to_t2(self):
        assert choose_strength(100, 32, 0.1) == 2

    def test_huge_n_prefers_more_coverage(self):
        assert choose_strength(1e9, 32, 1.0) >= 3


class TestSelectViews:
    def test_returns_valid_covering(self):
        design = select_views(900_000, 32, 1.0)
        design.validate()
        assert design.block_size == 8

    def test_explicit_strength(self):
        design = select_views(900_000, 32, 1.0, strength=2)
        assert design.strength == 2
        assert design.num_blocks == 20

    def test_small_d_clamps_block_size(self):
        design = select_views(10_000, 6, 1.0, strength=2)
        design.validate()
        assert design.block_size <= 6


class TestNoisyRecordCount:
    def test_close_to_truth(self, rng):
        estimate = noisy_record_count(1_000_000, epsilon=0.001, rng=rng)
        assert abs(estimate - 1_000_000) < 50_000

    def test_never_below_one(self, rng):
        assert noisy_record_count(0, epsilon=0.001, rng=rng) >= 1.0
