"""The bench regression gate: doctored results must fail the build."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "check_bench_regression.py"

_spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)

GOOD_SERVE = {
    "benchmark": "serve_test",
    "warm": {"qps": 50_000.0, "mean_ms": 0.02},
    "speedup_warm_vs_cold_solved": 90.0,
    "solved_methods": {"residual": {"p95_ms": 0.15, "qps": 9_000.0}},
    "residual_p95_vs_covered": 1.5,
    "batch": {"residual": {"qps": 2_000.0}},
}


@pytest.fixture
def dirs(tmp_path):
    bench = tmp_path / "bench"
    baseline = tmp_path / "baseline"
    bench.mkdir()
    baseline.mkdir()
    (baseline / "BENCH_serve.json").write_text(json.dumps(GOOD_SERVE))
    return bench, baseline, tmp_path / "history.jsonl"


def run_gate(bench, baseline, history, *names):
    return gate.main([
        *names,
        "--bench-dir", str(bench),
        "--baseline-dir", str(baseline),
        "--history", str(history),
    ])


class TestGateVerdicts:
    def test_identical_results_pass(self, dirs, capsys):
        bench, baseline, history = dirs
        (bench / "BENCH_serve.json").write_text(json.dumps(GOOD_SERVE))
        assert run_gate(bench, baseline, history, "BENCH_serve.json") == 0
        assert "FAIL" not in capsys.readouterr().out

    def test_doctored_throughput_fails(self, dirs, capsys):
        bench, baseline, history = dirs
        doctored = json.loads(json.dumps(GOOD_SERVE))
        doctored["warm"]["qps"] = 5_000.0  # 10x collapse: way past tolerance
        (bench / "BENCH_serve.json").write_text(json.dumps(doctored))
        assert run_gate(bench, baseline, history, "BENCH_serve.json") == 1
        assert "FAIL" in capsys.readouterr().out

    def test_doctored_latency_fails(self, dirs):
        bench, baseline, history = dirs
        doctored = json.loads(json.dumps(GOOD_SERVE))
        doctored["warm"]["mean_ms"] = 1.0  # 50x slower than baseline
        (bench / "BENCH_serve.json").write_text(json.dumps(doctored))
        assert run_gate(bench, baseline, history, "BENCH_serve.json") == 1

    def test_noise_within_tolerance_passes(self, dirs):
        bench, baseline, history = dirs
        noisy = json.loads(json.dumps(GOOD_SERVE))
        noisy["warm"]["qps"] *= 0.7  # -30%, inside the 50% tolerance
        noisy["warm"]["mean_ms"] *= 1.5
        (bench / "BENCH_serve.json").write_text(json.dumps(noisy))
        assert run_gate(bench, baseline, history, "BENCH_serve.json") == 0

    def test_missing_baseline_fails(self, dirs):
        bench, baseline, history = dirs
        (baseline / "BENCH_serve.json").unlink()
        (bench / "BENCH_serve.json").write_text(json.dumps(GOOD_SERVE))
        assert run_gate(bench, baseline, history, "BENCH_serve.json") == 1

    def test_missing_metric_fails(self, dirs):
        bench, baseline, history = dirs
        partial = json.loads(json.dumps(GOOD_SERVE))
        del partial["speedup_warm_vs_cold_solved"]
        (bench / "BENCH_serve.json").write_text(json.dumps(partial))
        assert run_gate(bench, baseline, history, "BENCH_serve.json") == 1

    def test_no_fresh_files_is_usage_error(self, dirs):
        bench, baseline, history = dirs
        assert run_gate(bench, baseline, history) == 2

    def test_unknown_benchmark_is_usage_error(self, dirs):
        bench, baseline, history = dirs
        assert run_gate(bench, baseline, history, "BENCH_bogus.json") == 2


class TestHistory:
    def test_every_run_appends_a_record(self, dirs):
        bench, baseline, history = dirs
        (bench / "BENCH_serve.json").write_text(json.dumps(GOOD_SERVE))
        run_gate(bench, baseline, history, "BENCH_serve.json")
        doctored = json.loads(json.dumps(GOOD_SERVE))
        doctored["warm"]["qps"] = 1.0
        (bench / "BENCH_serve.json").write_text(json.dumps(doctored))
        run_gate(bench, baseline, history, "BENCH_serve.json")

        records = [
            json.loads(line) for line in history.read_text().splitlines()
        ]
        assert len(records) == 2
        assert [r["ok"] for r in records] == [True, False]
        assert all(r["type"] == "bench_regression_check" for r in records)
        assert all(r["bench"] == "BENCH_serve.json" for r in records)
        failed = records[1]["metrics"]["warm/qps"]
        assert failed["ok"] is False
        assert failed["ratio"] < 0.1

    def test_no_history_flag_suppresses_writes(self, dirs):
        bench, baseline, history = dirs
        (bench / "BENCH_serve.json").write_text(json.dumps(GOOD_SERVE))
        assert gate.main([
            "BENCH_serve.json",
            "--bench-dir", str(bench),
            "--baseline-dir", str(baseline),
            "--history", str(history),
            "--no-history",
        ]) == 0
        assert not history.exists()


class TestCustomChecks:
    def test_checks_override_file(self, dirs, tmp_path):
        bench, baseline, history = dirs
        checks = tmp_path / "checks.json"
        checks.write_text(json.dumps(
            {"BENCH_custom.json": [["score", "higher", 0.1]]}
        ))
        (baseline / "BENCH_custom.json").write_text('{"score": 100}')
        (bench / "BENCH_custom.json").write_text('{"score": 50}')
        assert gate.main([
            "--bench-dir", str(bench),
            "--baseline-dir", str(baseline),
            "--history", str(history),
            "--checks", str(checks),
        ]) == 1


class TestProcessExitCode:
    def test_subprocess_exit_is_nonzero_on_doctored_file(self, dirs):
        # the CI contract is the literal process exit status
        bench, baseline, history = dirs
        doctored = json.loads(json.dumps(GOOD_SERVE))
        doctored["warm"]["qps"] = 1.0
        (bench / "BENCH_serve.json").write_text(json.dumps(doctored))
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "BENCH_serve.json",
             "--bench-dir", str(bench),
             "--baseline-dir", str(baseline),
             "--no-history"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout
