"""Smoke checks for the example scripts.

Full executions take minutes (they use realistic dataset sizes), so
the default suite verifies that every example imports cleanly and
exposes a ``main``; set ``REPRO_RUN_EXAMPLES=1`` to execute them.
"""

import importlib.util
import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"


def test_examples_present():
    """The repository ships at least the five documented scenarios."""
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "clickstream_release",
        "correlated_sequences",
        "mechanism_comparison",
        "categorical_survey",
        "graphical_model",
    } <= names


@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_EXAMPLES"),
    reason="set REPRO_RUN_EXAMPLES=1 to execute the examples end to end",
)
@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
