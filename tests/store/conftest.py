"""Shared fixtures for the synopsis-store tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.priview import PriView
from repro.covering.repository import best_design
from repro.marginals.dataset import BinaryDataset
from repro.store import SynopsisStore


def fit_synopsis(d: int = 8, seed: int = 1, epsilon: float = 2.0):
    """A small fitted synopsis; distinct seeds give distinct payloads."""
    rng = np.random.default_rng(1000 + seed)
    data = (rng.random((600, d)) < 0.35).astype(np.uint8)
    dataset = BinaryDataset(data, name=f"fixture-d{d}-s{seed}")
    return PriView(epsilon, design=best_design(d, 4, 2), seed=seed).fit(dataset)


@pytest.fixture(scope="session")
def alpha_synopsis():
    return fit_synopsis(d=8, seed=1, epsilon=1.0)


@pytest.fixture(scope="session")
def beta_synopsis():
    return fit_synopsis(d=10, seed=2, epsilon=2.0)


@pytest.fixture(scope="session")
def alpha_v2_synopsis():
    """Same shape as ``alpha`` but a different noise stream — what a
    re-publish of the dataset would look like."""
    return fit_synopsis(d=8, seed=7, epsilon=1.0)


@pytest.fixture
def store(tmp_path) -> SynopsisStore:
    return SynopsisStore(tmp_path / "store")
