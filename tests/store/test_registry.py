"""Registry semantics: publish, resolve, pin, prune, gc, verify, and
crash consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.exceptions import StoreError, SynopsisIntegrityError
from repro.store import SynopsisStore, parse_spec
from repro.store import artifacts


class TestParseSpec:
    @pytest.mark.parametrize("spec, expected", [
        ("adult", ("adult", None)),
        ("adult@latest", ("adult", None)),
        ("adult@3", ("adult", 3)),
    ])
    def test_valid(self, spec, expected):
        assert parse_spec(spec) == expected

    @pytest.mark.parametrize("spec", ["", "@3", "adult@x", None])
    def test_invalid(self, spec):
        with pytest.raises(StoreError):
            parse_spec(spec)


class TestPublishResolve:
    def test_versions_increase(self, store, alpha_synopsis, alpha_v2_synopsis):
        v1 = store.publish("adult", alpha_synopsis)
        v2 = store.publish("adult", alpha_v2_synopsis)
        assert (v1.version, v2.version) == (1, 2)
        assert store.resolve("adult").version == 2
        assert store.resolve("adult@latest").version == 2
        assert store.resolve("adult@1").sha256 == v1.sha256

    def test_metadata_recorded(self, store, alpha_synopsis):
        info = store.publish(
            "adult", alpha_synopsis,
            created_at="2026-08-06T00:00:00Z", fit_seconds=1.25,
            extra={"note": "nightly"},
        )
        assert info.epsilon == alpha_synopsis.epsilon
        assert info.num_attributes == alpha_synopsis.num_attributes
        assert info.num_views == alpha_synopsis.num_views
        assert info.design == alpha_synopsis.design.notation
        assert info.created_at == "2026-08-06T00:00:00Z"
        assert info.fit_seconds == 1.25
        assert info.extra == {"note": "nightly"}
        assert info.total_count == pytest.approx(alpha_synopsis.total_count())

    def test_round_trip_is_bitwise(self, store, alpha_synopsis):
        store.publish("adult", alpha_synopsis)
        again = store.get("adult")
        for mine, theirs in zip(alpha_synopsis.views, again.views):
            assert mine.attrs == theirs.attrs
            assert np.array_equal(mine.counts, theirs.counts)

    def test_publish_from_path(self, store, alpha_synopsis, tmp_path):
        from repro.core.serialization import save_synopsis

        path = save_synopsis(alpha_synopsis, tmp_path / "loose.npz")
        info = store.publish("adult", path)
        assert info.epsilon == alpha_synopsis.epsilon
        assert np.array_equal(
            store.get("adult").views[0].counts, alpha_synopsis.views[0].counts
        )

    def test_identical_payload_dedupes_objects(self, store, alpha_synopsis):
        a = store.publish("adult", alpha_synopsis)
        b = store.publish("adult", alpha_synopsis)
        assert a.sha256 == b.sha256
        assert len(list(artifacts.iter_objects(store.objects_dir))) == 1

    def test_unknown_dataset(self, store):
        with pytest.raises(StoreError, match="unknown dataset"):
            store.resolve("nope")

    def test_bad_name_rejected(self, store, alpha_synopsis):
        with pytest.raises(StoreError):
            store.publish("bad@name", alpha_synopsis)


class TestPinPruneGc:
    def test_pin_redirects_default(self, store, alpha_synopsis, alpha_v2_synopsis):
        store.publish("adult", alpha_synopsis)
        store.publish("adult", alpha_v2_synopsis)
        store.pin("adult", 1)
        assert store.resolve("adult").version == 1
        assert store.resolve("adult@latest").version == 1
        assert store.resolve("adult@2").version == 2
        store.unpin("adult")
        assert store.resolve("adult").version == 2

    def test_prune_keeps_pinned_and_newest(
        self, store, alpha_synopsis, alpha_v2_synopsis, beta_synopsis
    ):
        for synopsis in (alpha_synopsis, alpha_v2_synopsis, beta_synopsis):
            store.publish("adult", synopsis)
        store.pin("adult", 1)
        dropped = store.prune("adult", keep_last=1)
        assert [d.version for d in dropped] == [2]
        kept = [v.version for v in store.manifest().entry("adult").versions]
        assert kept == [1, 3]

    def test_gc_removes_unreferenced_objects(
        self, store, alpha_synopsis, alpha_v2_synopsis
    ):
        store.publish("adult", alpha_synopsis)
        v2 = store.publish("adult", alpha_v2_synopsis)
        store.prune("adult", keep_last=1)
        summary = store.gc(tmp_age_s=0)
        assert len(summary["removed_objects"]) == 1
        assert summary["reclaimed_bytes"] > 0
        # survivor still loads
        assert store.get("adult@2").epsilon is not None
        assert store.resolve("adult").sha256 == v2.sha256


class TestCrashConsistency:
    def test_clean_failure_at_rename_leaves_previous_serving(
        self, store, alpha_synopsis, alpha_v2_synopsis, monkeypatch
    ):
        """A publish failing between temp-write and rename must leave
        the registry exactly as it was."""
        v1 = store.publish("adult", alpha_synopsis)

        def boom(src, dst):
            raise OSError("simulated kill between temp-write and rename")

        monkeypatch.setattr(artifacts, "_replace", boom)
        with pytest.raises(OSError):
            store.publish("adult", alpha_v2_synopsis)
        monkeypatch.undo()

        assert store.resolve("adult").sha256 == v1.sha256
        report = store.verify()
        assert report["clean"] and report["checked"] == 1
        table = store.get("adult").marginal((0, 1))
        assert np.array_equal(table.counts, alpha_synopsis.marginal((0, 1)).counts)

    def test_hard_kill_leftover_tmp_is_invisible_then_swept(
        self, store, alpha_synopsis
    ):
        """Simulate a writer dying mid-write: only a .tmp-* file
        remains.  verify() stays clean; gc sweeps it once stale."""
        store.publish("adult", alpha_synopsis)
        leftover = artifacts.make_temp(store.objects_dir, suffix=".npz")
        leftover.write_bytes(b"half a synopsis")

        report = store.verify()
        assert report["clean"]
        assert leftover.name in report["tmp_files"]

        summary = store.gc(tmp_age_s=0)
        assert leftover.name in summary["removed_tmp"]
        assert not leftover.exists()
        assert store.verify()["tmp_files"] == []

    def test_fresh_tmp_not_swept(self, store, alpha_synopsis):
        store.publish("adult", alpha_synopsis)
        leftover = artifacts.make_temp(store.objects_dir, suffix=".npz")
        assert store.gc()["removed_tmp"] == []  # default 1h age guard
        assert leftover.exists()


class TestIntegrity:
    def _corrupt_object(self, store, info):
        path = store.object_path(info)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        return path

    def test_corrupt_load_quarantines_and_raises(self, store, alpha_synopsis):
        info = store.publish("adult", alpha_synopsis)
        self._corrupt_object(store, info)
        with obs.session() as sess:
            with pytest.raises(SynopsisIntegrityError):
                store.get("adult")
            counters = sess.metrics.snapshot()["counters"]
        assert counters.get("store.corrupt_artifacts") == 1
        assert not store.object_path(info).exists()
        assert len(list(store.quarantine_dir.iterdir())) == 1
        # the artifact is gone, not silently re-served
        with pytest.raises(StoreError, match="missing"):
            store.get("adult")

    def test_verify_reports_corruption(self, store, alpha_synopsis, beta_synopsis):
        store.publish("adult", alpha_synopsis)
        info = store.publish("msnbc", beta_synopsis)
        self._corrupt_object(store, info)
        report = store.verify()
        assert not report["clean"]
        assert report["corrupt"] == ["msnbc@1"]
        assert report["ok"] == 1
        # quarantine=True moves the bad artifact aside
        report = store.verify(quarantine=True)
        assert report["corrupt"] == ["msnbc@1"]
        assert len(list(store.quarantine_dir.iterdir())) == 1
        assert store.verify()["missing"] == ["msnbc@1"]

    def test_open_missing_store(self, tmp_path):
        with pytest.raises(StoreError):
            SynopsisStore(tmp_path / "nope", create=False)


class TestObsWiring:
    def test_publish_gauges_and_spans(self, store, alpha_synopsis):
        from repro.obs.exporters import flatten_stages

        with obs.session() as sess:
            store.publish("adult", alpha_synopsis)
            store.get("adult")
            snapshot = sess.metrics.snapshot()
            stages = flatten_stages(sess.tracer.roots)
        assert snapshot["counters"].get("store.publish") == 1
        assert snapshot["counters"].get("store.load") == 1
        assert snapshot["gauges"].get("store.entries") == 1
        assert snapshot["gauges"].get("store.bytes", 0) > 0
        assert "store.publish" in stages and "store.load" in stages
