"""CLI coverage for the ``store`` verb."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialization import save_synopsis


@pytest.fixture
def synopsis_path(alpha_synopsis, tmp_path):
    return save_synopsis(alpha_synopsis, tmp_path / "loose.npz")


@pytest.fixture
def store_root(tmp_path):
    return str(tmp_path / "registry")


class TestStoreVerbs:
    def test_publish_ls_info(self, store_root, synopsis_path, capsys):
        assert main([
            "store", "publish", "--store", store_root, "adult",
            str(synopsis_path), "--created-at", "2026-08-06T00:00:00Z",
            "--fit-seconds", "1.5",
        ]) == 0
        assert "published adult@1" in capsys.readouterr().out

        assert main(["store", "ls", "--store", store_root]) == 0
        out = capsys.readouterr().out
        assert "adult" in out and "serving v1" in out
        # sizes are human-readable, timestamps the stored ISO-8601 value
        assert "KiB)" in out or " B)" in out
        assert "created 2026-08-06T00:00:00Z" in out
        assert "total: 1 dataset(s), 1 version(s)" in out

        assert main(["store", "ls", "--store", store_root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (dataset,) = payload["datasets"]
        assert dataset["name"] == "adult"
        assert dataset["serving"] == 1
        assert dataset["pinned"] is None
        version = dataset["versions"][0]
        assert version["created_at"] == "2026-08-06T00:00:00Z"
        assert isinstance(version["size_bytes"], int)  # raw, not prettified
        assert payload["stats"]["datasets"] == 1

        assert main(["store", "info", "--store", store_root, "adult@1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["versions"][0]["created_at"] == "2026-08-06T00:00:00Z"
        assert payload["versions"][0]["fit_seconds"] == 1.5

    def test_verify_clean_and_corrupt_exit_codes(
        self, store_root, synopsis_path, capsys
    ):
        from repro.store import SynopsisStore

        main(["store", "publish", "--store", store_root, "adult",
              str(synopsis_path)])
        capsys.readouterr()
        assert main(["store", "verify", "--store", store_root]) == 0
        assert json.loads(capsys.readouterr().out)["clean"] is True

        store = SynopsisStore(store_root, create=False)
        path = store.object_path(store.resolve("adult"))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert main(["store", "verify", "--store", store_root]) == 1
        assert json.loads(capsys.readouterr().out)["corrupt"] == ["adult@1"]

    def test_gc_sweeps_tmp(self, store_root, synopsis_path, capsys):
        from repro.store import SynopsisStore, artifacts

        main(["store", "publish", "--store", store_root, "adult",
              str(synopsis_path)])
        store = SynopsisStore(store_root, create=False)
        artifacts.make_temp(store.objects_dir, suffix=".npz").write_bytes(b"x")
        capsys.readouterr()
        assert main([
            "store", "gc", "--store", store_root, "--tmp-age", "0",
        ]) == 0
        assert len(json.loads(capsys.readouterr().out)["removed_tmp"]) == 1

    def test_missing_store_for_readonly_verbs(self, store_root):
        from repro.exceptions import StoreError

        with pytest.raises(StoreError):
            main(["store", "ls", "--store", store_root])

    def test_store_serve_args_parse(self):
        args = build_parser().parse_args([
            "store", "serve", "--store", "registry/", "--port", "0",
            "--max-engines", "4", "--watch", "--cache-size", "64",
        ])
        assert args.store_command == "serve"
        assert args.max_engines == 4 and args.watch is True
