"""Atomic-write and content-addressing primitives."""

from __future__ import annotations

import pytest

from repro.store import artifacts


class TestAtomicWrite:
    def test_replaces_content(self, tmp_path):
        target = tmp_path / "blob.json"
        artifacts.atomic_write_bytes(target, b"one")
        artifacts.atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"

    def test_no_tmp_left_behind(self, tmp_path):
        artifacts.atomic_write_bytes(tmp_path / "blob", b"payload")
        assert list(artifacts.iter_tmp_files(tmp_path)) == []

    def test_failed_rename_cleans_tmp_and_keeps_old(self, tmp_path, monkeypatch):
        target = tmp_path / "blob"
        artifacts.atomic_write_bytes(target, b"old")

        def boom(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(artifacts, "_replace", boom)
        with pytest.raises(OSError):
            artifacts.atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"old"
        monkeypatch.undo()
        assert list(artifacts.iter_tmp_files(tmp_path)) == []


class TestIngest:
    def test_content_address_layout(self, tmp_path):
        objects = tmp_path / "objects"
        tmp = artifacts.make_temp(objects, suffix=".npz")
        tmp.write_bytes(b"synopsis-bytes")
        sha, final, size = artifacts.ingest_file(tmp, objects)
        assert size == len(b"synopsis-bytes")
        assert final == objects / sha[:2] / f"{sha}.npz"
        assert final.read_bytes() == b"synopsis-bytes"
        assert not tmp.exists()
        assert sha == artifacts.file_sha256(final)

    def test_identical_bytes_dedupe(self, tmp_path):
        objects = tmp_path / "objects"
        shas = []
        for _ in range(2):
            tmp = artifacts.make_temp(objects, suffix=".npz")
            tmp.write_bytes(b"same payload")
            sha, final, _ = artifacts.ingest_file(tmp, objects)
            shas.append(sha)
        assert shas[0] == shas[1]
        assert len(list(artifacts.iter_objects(objects))) == 1

    def test_tmp_files_invisible_to_readers(self, tmp_path):
        objects = tmp_path / "objects"
        artifacts.make_temp(objects, suffix=".npz").write_bytes(b"half-done")
        assert list(artifacts.iter_objects(objects)) == []
        assert len(list(artifacts.iter_tmp_files(tmp_path))) == 1


class TestQuarantine:
    def test_moves_file_aside(self, tmp_path):
        bad = tmp_path / "objects" / "ab" / "abcd.npz"
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"corrupt")
        target = artifacts.quarantine_file(bad, tmp_path / "quarantine")
        assert not bad.exists()
        assert target.read_bytes() == b"corrupt"

    def test_never_overwrites_prior_evidence(self, tmp_path):
        quarantine = tmp_path / "quarantine"
        targets = []
        for generation in range(3):
            bad = tmp_path / "abcd.npz"
            bad.write_bytes(f"corrupt-{generation}".encode())
            targets.append(artifacts.quarantine_file(bad, quarantine))
        assert len({t.name for t in targets}) == 3
        assert sorted(p.read_bytes() for p in targets) == [
            b"corrupt-0", b"corrupt-1", b"corrupt-2",
        ]
