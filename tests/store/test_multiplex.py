"""EngineRouter + store-backed MarginalServer: routing, LRU, hot swap."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.exceptions import QueryError
from repro.serve import EngineRouter, MarginalServer, QueryClient, serve_store
from repro.store import SynopsisStore


@pytest.fixture
def populated_store(store, alpha_synopsis, beta_synopsis):
    store.publish("alpha", alpha_synopsis)
    store.publish("msnbc", beta_synopsis)
    return store


class TestRouter:
    def test_lazy_build_and_reuse(self, populated_store):
        with EngineRouter(populated_store) as router:
            assert router.stats()["hosted"] == {}
            with router.lease("alpha") as engine:
                first = engine
            with router.lease("alpha") as engine:
                assert engine is first  # built once, reused
            assert list(router.stats()["hosted"]) == ["alpha"]

    def test_unknown_dataset_is_query_error(self, populated_store):
        with EngineRouter(populated_store) as router:
            with pytest.raises(QueryError, match="unknown dataset"):
                router.lease("nope")

    def test_lru_eviction_closes_drained_engine(self, populated_store):
        with EngineRouter(populated_store, max_engines=1) as router:
            with router.lease("alpha") as alpha_engine:
                pass
            with router.lease("msnbc"):
                pass  # capacity 1: alpha evicted
            assert list(router.stats()["hosted"]) == ["msnbc"]
            # the evicted engine's pool is shut down once idle
            assert alpha_engine._pool._shutdown

    def test_router_accepts_store_path(self, populated_store):
        with EngineRouter(str(populated_store.root)) as router:
            with router.lease("alpha") as engine:
                assert engine.source.num_attributes == 8

    def test_reload_swaps_only_changed(
        self, populated_store, alpha_v2_synopsis
    ):
        with EngineRouter(populated_store) as router:
            with router.lease("alpha"):
                pass
            with router.lease("msnbc"):
                pass
            assert router.reload() == {
                "swapped": [], "unchanged": ["alpha@1", "msnbc@1"],
                "dropped": [],
            }
            populated_store.publish("alpha", alpha_v2_synopsis)
            summary = router.reload()
            assert summary["swapped"] == [{"from": "alpha@1", "to": "alpha@2"}]
            assert summary["unchanged"] == ["msnbc@1"]
            with router.lease("alpha") as engine:
                assert np.array_equal(
                    engine.answer((0, 1)).table.counts,
                    alpha_v2_synopsis.marginal((0, 1)).counts,
                )

    def test_inflight_lease_survives_swap(
        self, populated_store, alpha_v2_synopsis
    ):
        """An engine retired by a hot swap keeps answering the request
        that holds it, and only closes when that lease drains."""
        with EngineRouter(populated_store) as router:
            lease = router.lease("alpha")
            old_engine = lease.engine
            populated_store.publish("alpha", alpha_v2_synopsis)
            router.reload()
            # old engine is retired but still alive for this lease
            assert not old_engine._pool._shutdown
            answer = old_engine.answer((0, 1))
            assert answer.table is not None
            lease.__exit__(None, None, None)
            assert old_engine._pool._shutdown

    def test_watch_auto_reloads(self, populated_store, alpha_v2_synopsis):
        with EngineRouter(populated_store, watch=True) as router:
            with router.lease("alpha"):
                pass
            populated_store.publish("alpha", alpha_v2_synopsis)
            with router.lease("alpha") as engine:
                assert np.array_equal(
                    engine.answer((0, 1)).table.counts,
                    alpha_v2_synopsis.marginal((0, 1)).counts,
                )
            assert router.stats()["swaps"] == 1


class TestStoreServer:
    def test_two_datasets_bitwise_identical(
        self, populated_store, alpha_synopsis, beta_synopsis
    ):
        """The acceptance check: a covered marginal for two different
        published datasets, each bitwise equal to its own synopsis."""
        with serve_store(populated_store, port=0) as server:
            client = QueryClient(server.url)
            for name, synopsis in (
                ("alpha", alpha_synopsis), ("msnbc", beta_synopsis)
            ):
                payload = client.marginal((0, 1), dataset=name)
                assert payload["path"] == "covered"
                assert np.array_equal(
                    np.asarray(payload["counts"]),
                    synopsis.marginal((0, 1)).counts,
                )

    def test_datasets_listing_and_health(self, populated_store):
        with serve_store(populated_store, port=0) as server:
            client = QueryClient(server.url)
            names = [d["name"] for d in client.datasets()]
            assert names == ["alpha", "msnbc"]
            health = client.healthz()
            assert health["mode"] == "store"
            assert health["datasets"] == 2

    def test_unknown_dataset_404(self, populated_store):
        with serve_store(populated_store, port=0) as server:
            client = QueryClient(server.url)
            with pytest.raises(QueryError, match="404"):
                client.marginal((0, 1), dataset="nope")

    def test_store_server_rejects_single_paths_and_vice_versa(
        self, populated_store, alpha_synopsis
    ):
        from repro.serve import QueryEngine

        with serve_store(populated_store, port=0) as server:
            client = QueryClient(server.url)
            with pytest.raises(QueryError, match="store"):
                client.marginal((0, 1))  # no dataset on a store server
        engine = QueryEngine(alpha_synopsis)
        with MarginalServer(engine, port=0) as server:
            client = QueryClient(server.url)
            with pytest.raises(QueryError, match="single source"):
                client.marginal((0, 1), dataset="alpha")
            with pytest.raises(QueryError, match="single source"):
                client.reload()

    def test_client_default_dataset(self, populated_store, alpha_synopsis):
        with serve_store(populated_store, port=0) as server:
            client = QueryClient(server.url, dataset="alpha")
            table = client.marginal_table((0, 1))
            assert np.array_equal(
                table.counts, alpha_synopsis.marginal((0, 1)).counts
            )
            batch = client.batch([(0, 1), (1, 0)])
            assert batch["distinct"] == 1

    def test_per_dataset_counters(self, populated_store):
        with obs.session() as sess:
            with serve_store(populated_store, port=0) as server:
                client = QueryClient(server.url)
                client.marginal((0, 1), dataset="alpha")
                client.marginal((0, 1), dataset="alpha")
                client.marginal((0, 1), dataset="msnbc")
            counters = sess.metrics.snapshot()["counters"]
        assert counters.get("serve.dataset.alpha") == 2
        assert counters.get("serve.dataset.msnbc") == 1

    def test_per_dataset_stats_route(self, populated_store):
        import json
        import urllib.request

        with serve_store(populated_store, port=0) as server:
            client = QueryClient(server.url)
            client.marginal((0, 1), dataset="alpha")
            request = urllib.request.Request(
                f"{server.url}/v1/d/alpha/stats", data=b"{}",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                payload = json.loads(response.read())
        assert payload["requests"] == 1
        assert payload["synopsis"]["num_attributes"] == 8

    def test_hot_swap_under_load_zero_failures(
        self, populated_store, alpha_synopsis, alpha_v2_synopsis
    ):
        """The acceptance check: hot-swapping a version under
        concurrent load completes with zero failed requests, and every
        answer matches one of the two published generations."""
        expected = {
            alpha_synopsis.marginal((0, 1)).counts.tobytes(),
            alpha_v2_synopsis.marginal((0, 1)).counts.tobytes(),
        }
        with serve_store(populated_store, port=0) as server:
            stop = threading.Event()
            failures: list[str] = []
            served: list[int] = [0] * 4

            def hammer(slot: int) -> None:
                client = QueryClient(server.url, dataset="alpha")
                while not stop.is_set() or served[slot] == 0:
                    try:
                        payload = client.marginal((0, 1))
                    except Exception as exc:  # noqa: BLE001 - the assertion
                        failures.append(f"{type(exc).__name__}: {exc}")
                        return
                    counts = np.asarray(payload["counts"]).tobytes()
                    if counts not in expected:
                        failures.append("answer matches no published version")
                        return
                    served[slot] += 1

            threads = [
                threading.Thread(target=hammer, args=(slot,), daemon=True)
                for slot in range(len(served))
            ]
            for thread in threads:
                thread.start()
            control = QueryClient(server.url)
            populated_store.publish("alpha", alpha_v2_synopsis)
            summary = control.reload()
            stop.set()
            for thread in threads:
                thread.join(timeout=30)

            assert summary["swapped"] == [{"from": "alpha@1", "to": "alpha@2"}]
            assert not failures, failures[:5]
            assert all(count > 0 for count in served), served
            # post-swap answers come from the new version
            post = np.asarray(control.marginal((0, 1), dataset="alpha")["counts"])
            assert np.array_equal(
                post, alpha_v2_synopsis.marginal((0, 1)).counts
            )
