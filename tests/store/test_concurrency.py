"""Concurrent store access: publishers never corrupt readers.

The satellite acceptance: one thread publishing versions in a loop
while 8 reader threads ``resolve("name@latest")`` and query — readers
must never observe a partial artifact or a checksum failure.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.store import SynopsisStore

from tests.store.conftest import fit_synopsis

READERS = 8
PUBLISHES = 6


@pytest.fixture(scope="module")
def generations():
    """Distinct small synopses, one per published version."""
    return [fit_synopsis(d=8, seed=seed, epsilon=1.0) for seed in range(4)]


def test_readers_never_see_partial_or_corrupt(tmp_path, generations):
    synopses = generations
    store = SynopsisStore(tmp_path / "store")
    # Any loaded synopsis must reproduce exactly one generation's
    # (0, 1) marginal, bitwise — anything else is a torn read.
    reference = {s.marginal((0, 1)).counts.tobytes() for s in synopses}

    store.publish("conc", synopses[0])
    start = threading.Barrier(READERS + 1)
    done = threading.Event()
    failures: list[str] = []
    reads = [0] * READERS

    def reader(slot: int) -> None:
        # Each reader gets its own handle: no shared mutable state.
        mine = SynopsisStore(tmp_path / "store", create=False)
        start.wait()
        while not done.is_set() or reads[slot] == 0:
            try:
                info = mine.resolve("conc@latest")
                synopsis = mine.load_version(info)  # checksum-verified
                counts = synopsis.marginal((0, 1)).counts
            except Exception as exc:  # noqa: BLE001 - the assertion
                failures.append(f"reader {slot}: {type(exc).__name__}: {exc}")
                break
            if counts.tobytes() not in reference:
                failures.append(
                    f"reader {slot}: observed counts matching no "
                    f"published generation (version {info.version})"
                )
                break
            reads[slot] += 1

    def publisher() -> None:
        start.wait()
        for publish in range(PUBLISHES):
            store.publish("conc", synopses[(publish + 1) % len(synopses)])
        done.set()

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(READERS)
    ]
    threads.append(threading.Thread(target=publisher, daemon=True))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    done.set()

    assert not failures, failures[:5]
    assert all(count > 0 for count in reads), reads
    assert store.resolve("conc").version == PUBLISHES + 1
    assert store.verify()["clean"]


def test_concurrent_publishers_never_lose_a_version(tmp_path, generations):
    """Two threads publishing the same name interleave under the store
    lock: every publish gets a unique, dense version number."""
    synopses = generations
    store = SynopsisStore(tmp_path / "store")
    versions: list[int] = []
    lock = threading.Lock()

    def publisher(offset: int) -> None:
        mine = SynopsisStore(tmp_path / "store")
        for publish in range(3):
            info = mine.publish("dense", synopses[(offset + publish) % len(synopses)])
            with lock:
                versions.append(info.version)

    threads = [
        threading.Thread(target=publisher, args=(offset,)) for offset in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    assert sorted(versions) == [1, 2, 3, 4, 5, 6]
    assert [v.version for v in store.manifest().entry("dense").versions] == [
        1, 2, 3, 4, 5, 6,
    ]
