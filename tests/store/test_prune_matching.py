"""Glob retention: ``prune_matching`` and the ``store prune`` verb."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.store import SynopsisStore

from .conftest import fit_synopsis


def _fill(store, name, versions, seed0=0):
    # Distinct seeds everywhere: the store is content-addressed, so
    # identical synopses would share objects across datasets and make
    # gc counts misleading.
    for seed in range(seed0, seed0 + versions):
        store.publish(name, fit_synopsis(d=8, seed=seed))


class TestPruneMatching:
    def test_prunes_only_matching_datasets(self, store):
        _fill(store, "clicks-eu", 3)
        _fill(store, "clicks-us", 3, seed0=10)
        _fill(store, "adult", 3, seed0=20)
        dropped = store.prune_matching("clicks-*", keep_last=1)
        assert sorted(dropped) == ["clicks-eu", "clicks-us"]
        assert all(len(gone) == 2 for gone in dropped.values())
        manifest = store.manifest()
        assert len(manifest.datasets["clicks-eu"].versions) == 1
        assert len(manifest.datasets["clicks-us"].versions) == 1
        assert len(manifest.datasets["adult"].versions) == 3

    def test_keeps_newest_and_pinned(self, store):
        _fill(store, "clicks", 5)
        store.pin("clicks", 1)
        dropped = store.prune_matching("clicks", keep_last=2)
        kept = [v.version for v in store.manifest().datasets["clicks"].versions]
        assert kept == [1, 4, 5]  # pinned v1 survives alongside newest 2
        assert [v.version for v in dropped["clicks"]] == [2, 3]

    def test_no_match_is_a_noop(self, store):
        _fill(store, "adult", 2)
        assert store.prune_matching("nope-*", keep_last=1) == {}
        assert len(store.manifest().datasets["adult"].versions) == 2

    def test_dropped_versions_become_gc_garbage(self, store):
        _fill(store, "clicks", 3)
        store.prune_matching("clicks", keep_last=1)
        report = store.gc(tmp_age_s=0.0)
        assert len(report["removed_objects"]) == 2
        # The surviving version still loads and verifies.
        assert store.verify()["clean"]
        synopsis = store.load_version(store.resolve("clicks"))
        assert synopsis.num_attributes == 8

    def test_version_numbering_continues_after_prune(self, store):
        _fill(store, "clicks", 3)
        store.prune_matching("clicks", keep_last=1)
        info = store.publish("clicks", fit_synopsis(d=8, seed=9))
        assert info.version == 4  # never reuses pruned numbers


class TestPruneCli:
    @pytest.fixture
    def store_root(self, tmp_path):
        root = tmp_path / "registry"
        store = SynopsisStore(root)
        _fill(store, "clicks-eu", 3)
        _fill(store, "adult", 2, seed0=10)
        return str(root)

    def test_prune_by_glob_with_gc(self, store_root, capsys):
        assert main([
            "store", "prune", "--store", store_root,
            "--keep-last", "1", "--match", "clicks-*", "--gc",
        ]) == 0
        out = capsys.readouterr().out
        assert "clicks-eu: dropped 2 version(s) (v1, v2)" in out
        assert "gc: removed 2 object(s)" in out
        store = SynopsisStore(store_root, create=False)
        assert len(store.manifest().datasets["clicks-eu"].versions) == 1
        assert len(store.manifest().datasets["adult"].versions) == 2

    def test_prune_single_name(self, store_root, capsys):
        assert main([
            "store", "prune", "--store", store_root, "adult",
            "--keep-last", "1",
        ]) == 0
        assert "adult: dropped 1 version(s)" in capsys.readouterr().out

    def test_prune_nothing_to_do(self, store_root, capsys):
        assert main([
            "store", "prune", "--store", store_root, "adult",
            "--keep-last", "5",
        ]) == 0
        assert "nothing to prune" in capsys.readouterr().out

    def test_prune_requires_exactly_one_target(self, store_root):
        with pytest.raises(SystemExit):
            main(["store", "prune", "--store", store_root, "--keep-last", "1"])
        with pytest.raises(SystemExit):
            main([
                "store", "prune", "--store", store_root, "adult",
                "--keep-last", "1", "--match", "a*",
            ])
