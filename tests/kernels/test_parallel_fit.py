"""The parallel-fit determinism contract.

A fitted synopsis must be bit-identical no matter how many workers or
which backend executed the fan-out; ``packed=True`` alone must not
change anything relative to the seed path.
"""

import numpy as np
import pytest

from repro import PriView, obs
from repro.covering.repository import best_design
from repro.kernels import fit_defaults, set_fit_defaults
from repro.kernels.fit import generate_noisy_views
from repro.marginals.dataset import BinaryDataset


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(42)
    return BinaryDataset((rng.random((2500, 16)) < 0.3).astype(np.uint8))


@pytest.fixture(scope="module")
def design():
    return best_design(16, 8, 3)


def _views_equal(a, b):
    assert len(a) == len(b)
    for va, vb in zip(a, b):
        assert va.attrs == vb.attrs
        assert np.array_equal(va.counts, vb.counts)


class TestGenerateNoisyViews:
    def test_worker_count_invariance(self, dataset, design):
        reference = generate_noisy_views(
            dataset, design.blocks, 1.0, design.num_blocks, root_seed=5, workers=1
        )
        for workers in (2, 8):
            got = generate_noisy_views(
                dataset, design.blocks, 1.0, design.num_blocks,
                root_seed=5, workers=workers,
            )
            _views_equal(reference, got)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_invariance(self, dataset, design, backend):
        reference = generate_noisy_views(
            dataset, design.blocks, 1.0, design.num_blocks, root_seed=5, workers=1
        )
        got = generate_noisy_views(
            dataset, design.blocks, 1.0, design.num_blocks,
            root_seed=5, workers=2, backend=backend,
        )
        _views_equal(reference, got)

    def test_packed_source_invariance(self, dataset, design):
        raw = generate_noisy_views(
            dataset, design.blocks, 1.0, design.num_blocks, root_seed=5, workers=2
        )
        packed = generate_noisy_views(
            dataset.packed(), design.blocks, 1.0, design.num_blocks,
            root_seed=5, workers=2,
        )
        _views_equal(raw, packed)

    def test_infinite_epsilon_is_exact(self, dataset, design):
        views = generate_noisy_views(
            dataset, design.blocks, float("inf"), design.num_blocks,
            root_seed=0, workers=2,
        )
        for view, block in zip(views, design.blocks):
            assert np.array_equal(view.counts, dataset.marginal(block).counts)

    def test_draws_recorded_in_parent(self, dataset, design):
        with obs.session() as sess:
            with obs.budget_scope("fit", 1.0):
                generate_noisy_views(
                    dataset, design.blocks, 1.0, design.num_blocks,
                    root_seed=0, workers=2, backend="process",
                )
            sess.ledger.check()
            assert sess.ledger.total_draws() == design.num_blocks


class TestPriViewIntegration:
    def test_packed_only_matches_seed_path(self, dataset, design):
        legacy = PriView(1.0, design=design, seed=5).fit(dataset)
        packed = PriView(1.0, design=design, seed=5, packed=True).fit(dataset)
        _views_equal(legacy.views, packed.views)

    def test_fit_worker_invariance(self, dataset, design):
        reference = PriView(1.0, design=design, seed=5, workers=1).fit(dataset)
        for workers in (2, 8):
            got = PriView(
                1.0, design=design, seed=5, packed=True, workers=workers
            ).fit(dataset)
            _views_equal(reference.views, got.views)

    def test_parallel_fit_ledger_balances(self, dataset, design):
        with obs.session() as sess:
            PriView(1.0, design=design, seed=5, packed=True, workers=2).fit(dataset)
            sess.ledger.check()
            snapshot = sess.metrics.snapshot()
        assert snapshot["gauges"]["fit.workers"] == 2
        assert snapshot["gauges"]["fit.packed"] == 1

    def test_defaults_flow_from_config(self, dataset, design):
        previous = set_fit_defaults(workers=2, packed=True)
        try:
            mechanism = PriView(1.0, design=design, seed=5)
            assert mechanism.packed is True and mechanism.workers == 2
            explicit = PriView(1.0, design=design, seed=5, workers=8)
            assert explicit.workers == 8
        finally:
            set_fit_defaults(**previous)
        assert fit_defaults() == previous
