"""Tests for the bit-sliced marginal kernels.

The load-bearing property: ``PackedDataset.marginal`` is *bitwise*
identical to ``BinaryDataset.marginal`` for every (N, d, attrs) —
both count exactly, so the assertion is ``array_equal``, never
``allclose``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels.packed as packed_mod
from repro import obs
from repro.exceptions import DimensionError
from repro.kernels.packed import (
    DEFAULT_CHUNK_WORDS,
    PackedDataset,
    as_packed,
    moebius_from_subset_counts,
    pack_columns,
    popcount_words,
    unpack_columns,
)
from repro.marginals.dataset import BinaryDataset


def _random_dataset(seed: int, n: int, d: int) -> BinaryDataset:
    rng = np.random.default_rng(seed)
    density = rng.uniform(0.05, 0.95)
    return BinaryDataset((rng.random((n, d)) < density).astype(np.uint8))


class TestPackUnpack:
    @given(seed=st.integers(0, 10_000), n=st.integers(0, 300), d=st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, seed, n, d):
        data = _random_dataset(seed, n, d).data
        words = pack_columns(data)
        assert words.shape == (d, (n + 63) // 64)
        assert np.array_equal(unpack_columns(words, n), data)

    def test_padding_bits_are_zero(self):
        data = np.ones((65, 2), dtype=np.uint8)
        words = pack_columns(data)
        # 65 records -> 2 words; the upper 63 bits of word 1 must be 0
        assert words[0, 1] == 1 and words[1, 1] == 1

    def test_bit_layout(self):
        # record r, attribute j -> bit r % 64 of word r // 64 of row j
        data = np.zeros((70, 2), dtype=np.uint8)
        data[3, 0] = 1
        data[66, 1] = 1
        words = pack_columns(data)
        assert words[0, 0] == np.uint64(1) << np.uint64(3)
        assert words[1, 1] == np.uint64(1) << np.uint64(66 - 64)

    def test_rejects_one_dimensional(self):
        with pytest.raises(DimensionError):
            pack_columns(np.array([0, 1, 0]))


class TestPopcount:
    def test_counts_bits(self):
        words = np.array([0, 1, 0xFF, ~np.uint64(0)], dtype=np.uint64)
        assert popcount_words(words) == 0 + 1 + 8 + 64

    def test_fallback_lut_matches(self, monkeypatch):
        lut = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint64)
        monkeypatch.setattr(packed_mod, "_HAS_BITWISE_COUNT", False)
        monkeypatch.setattr(packed_mod, "_POPCOUNT_LUT", lut, raising=False)
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, 257, dtype=np.uint64)
        expected = sum(bin(int(w)).count("1") for w in words)
        assert popcount_words(words) == expected

    def test_fallback_marginal_identical(self, monkeypatch):
        lut = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint64)
        monkeypatch.setattr(packed_mod, "_HAS_BITWISE_COUNT", False)
        monkeypatch.setattr(packed_mod, "_POPCOUNT_LUT", lut, raising=False)
        dataset = _random_dataset(7, 500, 8)
        packed = PackedDataset.from_dataset(dataset)
        for attrs in [(0,), (1, 4), (0, 2, 5, 7)]:
            assert np.array_equal(
                packed.marginal(attrs).counts, dataset.marginal(attrs).counts
            )
        np.testing.assert_allclose(
            packed.attribute_means(), dataset.attribute_means()
        )


class TestMoebius:
    def test_two_way_by_hand(self):
        # N=10, attr0 ones=6, attr1 ones=4, both=3
        zeta = np.array([10.0, 6.0, 4.0, 3.0])
        counts = moebius_from_subset_counts(zeta.copy())
        # cells [00, 10, 01, 11] under the library convention
        assert counts.tolist() == [3.0, 3.0, 1.0, 3.0]


class TestMarginalEquality:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(0, 400),
        d=st.integers(1, 12),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_bitwise_equal_to_unpacked(self, seed, n, d, data):
        dataset = _random_dataset(seed, n, d)
        arity = data.draw(st.integers(0, min(d, 5)))
        attrs = tuple(
            data.draw(
                st.lists(
                    st.integers(0, d - 1), min_size=arity, max_size=arity, unique=True
                )
            )
        )
        packed = PackedDataset.from_dataset(dataset)
        got = packed.marginal(attrs)
        expected = dataset.marginal(attrs)
        assert got.attrs == expected.attrs
        assert np.array_equal(got.counts, expected.counts)

    @pytest.mark.parametrize("n", [0, 1, 63, 64, 65, 129, 1000])
    def test_word_boundary_sizes(self, n):
        dataset = _random_dataset(n + 1, n, 6)
        packed = PackedDataset.from_dataset(dataset)
        for attrs in [(), (0,), (1, 3), (0, 2, 4, 5)]:
            assert np.array_equal(
                packed.marginal(attrs).counts, dataset.marginal(attrs).counts
            )

    def test_chunked_streaming_equal(self):
        dataset = _random_dataset(3, 5000, 8)
        whole = PackedDataset.from_dataset(dataset)
        chunked = PackedDataset.from_dataset(dataset, chunk_words=3)
        attrs = (0, 2, 3, 6, 7)
        assert np.array_equal(
            chunked.marginal(attrs).counts, whole.marginal(attrs).counts
        )

    def test_empty_attrs_is_total(self):
        dataset = _random_dataset(0, 321, 4)
        packed = PackedDataset.from_dataset(dataset)
        assert packed.marginal(()).counts.tolist() == [321.0]

    def test_marginals_plural(self):
        dataset = _random_dataset(5, 200, 5)
        packed = PackedDataset.from_dataset(dataset)
        blocks = [(0, 1), (2, 4)]
        for got, expected in zip(packed.marginals(blocks), dataset.marginals(blocks)):
            assert np.array_equal(got.counts, expected.counts)

    def test_attribute_means(self):
        dataset = _random_dataset(9, 777, 6)
        packed = PackedDataset.from_dataset(dataset)
        np.testing.assert_allclose(
            packed.attribute_means(), dataset.attribute_means()
        )


class TestConstructionAndValidation:
    def test_from_array_rejects_non_binary(self):
        with pytest.raises(DimensionError):
            PackedDataset.from_array(np.array([[0, 2]]))

    def test_words_shape_must_match_n(self):
        with pytest.raises(DimensionError):
            PackedDataset(np.zeros((3, 2), np.uint64), num_records=300)

    def test_chunk_words_positive(self):
        with pytest.raises(DimensionError):
            PackedDataset(np.zeros((3, 1), np.uint64), 10, chunk_words=0)

    def test_words_read_only(self):
        packed = PackedDataset.from_array(np.zeros((10, 3), np.uint8))
        with pytest.raises(ValueError):
            packed.words[0, 0] = 1

    def test_unpacked_roundtrip(self):
        dataset = _random_dataset(2, 150, 7)
        packed = PackedDataset.from_dataset(dataset)
        assert np.array_equal(packed.unpacked(), dataset.data)

    def test_out_of_range_attrs_rejected(self):
        packed = PackedDataset.from_array(np.zeros((10, 3), np.uint8))
        with pytest.raises(DimensionError):
            packed.marginal((0, 3))


class TestAsPacked:
    def test_passthrough(self):
        packed = PackedDataset.from_array(np.zeros((4, 2), np.uint8))
        assert as_packed(packed) is packed

    def test_dataset_packed_is_cached(self):
        dataset = _random_dataset(1, 100, 4)
        assert dataset.packed() is dataset.packed()
        assert as_packed(dataset) is dataset.packed()
        assert dataset.packed().chunk_words == DEFAULT_CHUNK_WORDS

    def test_chunk_override_rebuilds_wrapper_not_words(self):
        dataset = _random_dataset(1, 100, 4)
        base = dataset.packed()
        tuned = dataset.packed(chunk_words=16)
        assert tuned.chunk_words == 16
        assert np.array_equal(tuned.words, base.words)

    def test_raw_array_accepted(self):
        data = np.eye(5, dtype=np.uint8)
        packed = as_packed(data)
        assert np.array_equal(
            packed.marginal((0, 1)).counts,
            BinaryDataset(data).marginal((0, 1)).counts,
        )


class TestObservability:
    def test_kernel_counters_and_spans(self):
        dataset = _random_dataset(4, 300, 5)
        with obs.session() as sess:
            packed = PackedDataset.from_dataset(dataset)
            packed.marginal((0, 2))
            packed.marginal((1, 3, 4))
            snapshot = sess.metrics.snapshot()
        assert snapshot["counters"]["kernel.packed_marginals"] == 2
