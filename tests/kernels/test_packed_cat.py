"""Bit-plane categorical kernels vs the naive marginal extractor."""

import itertools

import numpy as np
import pytest

from repro.categorical.dataset import CategoricalDataset
from repro.kernels.packed_cat import (
    PackedCategoricalDataset,
    as_packed_categorical,
    plane_count,
)
from repro.marginals.domain import Domain


class TestPlaneCount:
    def test_matches_bit_length(self):
        for arity in range(2, 40):
            assert plane_count(arity) == (arity - 1).bit_length()


class TestPackedEqualsNaive:
    @pytest.mark.parametrize("trial", range(5))
    def test_random_mixed_domains(self, trial):
        """Property: every k-way marginal of a packed dataset is
        bitwise identical to the naive extractor's, across random
        mixed domains and record counts straddling word boundaries."""
        rng = np.random.default_rng(100 + trial)
        d = int(rng.integers(4, 9))
        arities = tuple(int(b) for b in rng.integers(2, 9, size=d))
        n = int(rng.integers(50, 400))
        dataset = CategoricalDataset.random(n, arities, rng=rng)
        packed = as_packed_categorical(dataset)
        assert packed.arities == arities
        for k in (1, 2, 3):
            for attrs in itertools.combinations(range(d), k):
                naive = dataset.marginal(attrs)
                fast = packed.marginal(attrs)
                assert fast.attrs == naive.attrs
                assert fast.arities == naive.arities
                np.testing.assert_array_equal(fast.counts, naive.counts)

    def test_word_boundary_sizes(self):
        rng = np.random.default_rng(0)
        for n in (63, 64, 65, 128, 129):
            dataset = CategoricalDataset.random(n, (3, 5, 2), rng=rng)
            packed = as_packed_categorical(dataset)
            for attrs in ((0,), (1, 2), (0, 1, 2)):
                np.testing.assert_array_equal(
                    packed.marginal(attrs).counts,
                    dataset.marginal(attrs).counts,
                )

    def test_unpacked_round_trip(self):
        rng = np.random.default_rng(1)
        dataset = CategoricalDataset.random(200, (4, 3, 7), rng=rng)
        packed = as_packed_categorical(dataset)
        np.testing.assert_array_equal(packed.unpacked(), dataset.data)

    def test_as_packed_passthrough(self):
        rng = np.random.default_rng(2)
        dataset = CategoricalDataset.random(64, (3, 3), rng=rng)
        packed = as_packed_categorical(dataset)
        assert as_packed_categorical(packed) is packed

    def test_domain_rides_along(self):
        dom = Domain.from_arities((3, 4))
        dataset = CategoricalDataset.random(
            100, dom, rng=np.random.default_rng(3)
        )
        packed = as_packed_categorical(dataset)
        assert isinstance(packed, PackedCategoricalDataset)
        assert getattr(packed, "domain", None) == dom
