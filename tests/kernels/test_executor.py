"""Tests for the deterministic ParallelExecutor and seed spawning."""

import os
import threading

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.kernels.executor import (
    BACKENDS,
    ParallelExecutor,
    resolve_workers,
    spawn_generators,
    spawn_seed_sequences,
)


class TestResolveWorkers:
    @pytest.mark.parametrize("workers,expected", [(None, 1), (0, 1), (1, 1), (5, 5)])
    def test_explicit(self, workers, expected):
        assert resolve_workers(workers) == expected

    def test_negative_means_cpu_count(self):
        assert resolve_workers(-1) == max(os.cpu_count() or 1, 1)


class TestSeedSpawning:
    def test_deterministic_per_index(self):
        a = spawn_generators(123, 4)
        b = spawn_generators(123, 4)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.random(8), gb.random(8))

    def test_children_independent(self):
        gens = spawn_generators(123, 3)
        draws = [g.random(8) for g in gens]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_accepts_seed_sequence(self):
        root = np.random.SeedSequence(7)
        seqs = spawn_seed_sequences(root, 2)
        assert len(seqs) == 2

    def test_prefix_stability(self):
        """The first k children don't depend on how many are spawned."""
        a = spawn_seed_sequences(9, 3)
        b = spawn_seed_sequences(9, 10)
        for sa, sb in zip(a, b):
            assert sa.generate_state(4).tolist() == sb.generate_state(4).tolist()


class TestParallelExecutor:
    def test_unknown_backend(self):
        with pytest.raises(ReproError):
            ParallelExecutor(2, backend="gpu")

    def test_auto_resolution(self):
        assert ParallelExecutor(1).backend == "serial"
        assert ParallelExecutor(4).backend == "thread"
        assert "auto" in BACKENDS

    def test_serial_runs_in_caller_thread(self):
        seen = []
        with ParallelExecutor(1) as pool:
            pool.map(lambda _: seen.append(threading.current_thread()), range(3))
        assert all(t is threading.main_thread() for t in seen)

    def test_map_preserves_order(self):
        with ParallelExecutor(4, backend="thread") as pool:
            out = pool.map(lambda x: x * x, range(50))
        assert out == [x * x for x in range(50)]

    def test_serial_initializer_called(self):
        calls = []
        pool = ParallelExecutor(1, initializer=calls.append, initargs=("hi",))
        pool.map(lambda x: x, [1, 2])
        assert calls == ["hi"]

    def test_thread_initializer_called(self):
        calls = []
        with ParallelExecutor(2, backend="thread",
                              initializer=calls.append, initargs=("hi",)) as pool:
            pool.map(lambda x: x, range(8))
        assert calls and set(calls) == {"hi"}

    def test_close_idempotent(self):
        pool = ParallelExecutor(2, backend="thread")
        pool.map(lambda x: x, range(4))
        pool.close()
        pool.close()

    def test_single_item_skips_pool(self):
        pool = ParallelExecutor(4, backend="thread")
        assert pool.map(lambda x: x + 1, [41]) == [42]
        assert pool._pool is None
        pool.close()
