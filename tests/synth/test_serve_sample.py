"""The record-sampling path: engine, HTTP route, client, CLI."""

import numpy as np
import pytest

from repro.categorical.dataset import CategoricalDataset
from repro.categorical.priview import CategoricalPriView
from repro.categorical.table import CategoricalMarginalTable
from repro.cli import main as cli_main
from repro.core.serialization import save_synopsis
from repro.exceptions import QueryError, RemoteQueryError
from repro.marginals.domain import Attribute, Domain
from repro.serve import MarginalServer, QueryClient
from repro.serve.engine import MAX_SAMPLE_RECORDS, QueryEngine


@pytest.fixture(scope="module")
def domain() -> Domain:
    return Domain((
        Attribute("age", 4, kind="numeric", bins=(0.0, 25, 45, 65, 100)),
        Attribute("job", 3, labels=("none", "blue", "white")),
        Attribute("flag", 2),
    ))


@pytest.fixture(scope="module")
def cat_synopsis(domain):
    ds = CategoricalDataset.random(6000, domain, rng=np.random.default_rng(1))
    return CategoricalPriView(epsilon=2.0, seed=2).fit(ds)


class TestEngineSample:
    def test_cold_then_warm(self, cat_synopsis):
        with QueryEngine(cat_synopsis, dataset="t") as engine:
            first = engine.sample(32, seed=1)
            second = engine.sample(32, seed=1)
        assert first.cold and not second.cold
        np.testing.assert_array_equal(first.records, second.records)
        assert first.records.shape == (32, 3)
        assert first.epsilon == cat_synopsis.epsilon

    def test_population_is_deterministic_across_engines(self, cat_synopsis):
        with QueryEngine(cat_synopsis) as a, QueryEngine(cat_synopsis) as b:
            np.testing.assert_array_equal(
                a.sampler().records.data, b.sampler().records.data
            )

    def test_bounds(self, cat_synopsis):
        with QueryEngine(cat_synopsis) as engine:
            with pytest.raises(QueryError):
                engine.sample(0)
            with pytest.raises(QueryError):
                engine.sample(MAX_SAMPLE_RECORDS + 1)

    def test_mixed_source_marginal_via_engine(self, cat_synopsis):
        with QueryEngine(cat_synopsis) as engine:
            answer = engine.answer((0, 2))
        assert isinstance(answer.table, CategoricalMarginalTable)
        assert answer.table.arities == (4, 2)

    def test_attached_engine_does_not_recurse(self, cat_synopsis):
        with QueryEngine(cat_synopsis) as engine:
            cat_synopsis.attach_engine(engine)
            try:
                table = cat_synopsis.marginal((0, 1))
            finally:
                cat_synopsis.attach_engine(None)
        assert table.arities == (4, 3)


class TestHttpSample:
    @pytest.fixture(scope="class")
    def server(self, cat_synopsis):
        engine = QueryEngine(cat_synopsis, dataset="mixed")
        with MarginalServer(engine=engine, port=0) as server:
            yield server

    @pytest.fixture(scope="class")
    def client(self, server):
        host, port = server.address
        return QueryClient(f"http://{host}:{port}")

    def test_sample_codes(self, client, domain):
        payload = client.sample(16, seed=3)
        assert payload["n"] == 16
        assert payload["attributes"] == list(domain.names)
        assert payload["arities"] == [4, 3, 2]
        assert len(payload["records"]) == 16
        assert not payload["decoded"]
        again = client.sample(16, seed=3)
        assert again["records"] == payload["records"]

    def test_sample_decoded(self, client):
        payload = client.sample(8, seed=3, decode=True)
        assert payload["decoded"]
        row = payload["records"][0]
        assert row[1] in ("none", "blue", "white")

    def test_marginal_decodes_categorical(self, client):
        table = client.marginal_table((0, 1))
        assert isinstance(table, CategoricalMarginalTable)
        assert table.arities == (4, 3)

    def test_bad_request_rejected(self, client):
        with pytest.raises(RemoteQueryError):
            client.sample(0)
        with pytest.raises(RemoteQueryError):
            client.sample(MAX_SAMPLE_RECORDS + 1)


class TestCliSynth:
    def test_synth_from_file(self, cat_synopsis, tmp_path, capsys):
        path = save_synopsis(cat_synopsis, tmp_path / "cat.npz")
        out = tmp_path / "synthetic.csv"
        code = cli_main([
            "synth", "--synopsis", str(path), "--out", str(out),
            "--records", "400", "--seed", "5", "--audit",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "synthesized 400 record(s)" in printed
        assert "status=exact" in printed
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "age,job,flag"
        assert len(lines) == 401
