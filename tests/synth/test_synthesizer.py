"""Synthesizer correctness: accuracy, monotonicity, determinism, zero ε."""

import numpy as np
import pytest

from repro import obs
from repro.categorical.dataset import CategoricalDataset
from repro.categorical.priview import CategoricalPriView
from repro.core.priview import PriView
from repro.exceptions import SynthesisError
from repro.marginals.dataset import BinaryDataset
from repro.marginals.domain import Domain
from repro.synth import RecordSampler, Synthesizer, domain_of, synthesize


@pytest.fixture(scope="module")
def cat_synopsis():
    dom = Domain.from_arities((2, 3, 4, 2, 5, 3))
    rng = np.random.default_rng(7)
    ds = CategoricalDataset.random(20_000, dom, rng=rng)
    return CategoricalPriView(epsilon=2.0, seed=11).fit(ds)


@pytest.fixture(scope="module")
def binary_synopsis():
    ds = BinaryDataset.random(10_000, 8, rng=np.random.default_rng(3))
    return PriView(epsilon=2.0, seed=5).fit(ds)


class TestDomainOf:
    def test_prefers_attached_domain(self, cat_synopsis):
        assert domain_of(cat_synopsis) is cat_synopsis.domain

    def test_falls_back_to_arities(self, cat_synopsis):
        bare = type(cat_synopsis)(
            views=cat_synopsis.views,
            arities=cat_synopsis.arities,
            epsilon=cat_synopsis.epsilon,
        )
        assert domain_of(bare).arities == cat_synopsis.arities

    def test_binary_synopsis(self, binary_synopsis):
        dom = domain_of(binary_synopsis)
        assert dom.is_binary
        assert dom.num_attributes == binary_synopsis.num_attributes

    def test_unknown_source_raises(self):
        with pytest.raises(SynthesisError):
            domain_of(object())


class TestSynthesizer:
    def test_l1_history_monotone_non_increasing(self, cat_synopsis):
        records = Synthesizer(seed=42).fit(cat_synopsis)
        history = records.meta["history"]
        assert len(history) >= 2
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(history, history[1:])
        )
        assert records.meta["final_l1"] == history[-1]

    def test_improves_over_init(self, cat_synopsis):
        records = Synthesizer(seed=42).fit(cat_synopsis)
        history = records.meta["history"]
        assert history[-1] < history[0]

    def test_deterministic_under_fixed_seed(self, cat_synopsis):
        a = Synthesizer(seed=9).fit(cat_synopsis)
        b = Synthesizer(seed=9).fit(cat_synopsis)
        np.testing.assert_array_equal(a.data, b.data)
        assert a.meta["history"] == b.meta["history"]

    def test_seed_changes_population(self, cat_synopsis):
        a = Synthesizer(seed=1).fit(cat_synopsis)
        b = Synthesizer(seed=2).fit(cat_synopsis)
        assert not np.array_equal(a.data, b.data)

    def test_zero_epsilon_in_ledger(self, cat_synopsis):
        with obs.session() as sess:
            Synthesizer(seed=0, rounds=3).fit(cat_synopsis)
            rows = {row.name: row for row in sess.ledger.audit()}
        row = rows["Synthesizer.fit"]
        assert row.configured == 0.0
        assert row.spent_max == 0.0
        assert row.status == "exact"

    def test_covered_marginals_match_synopsis(self, cat_synopsis):
        records = synthesize(cat_synopsis, seed=4)
        n = records.num_records
        errors = []
        for view in cat_synopsis.views:
            target = records.marginal(view.attrs)
            probs = view.counts / max(view.total(), 1.0)
            errors.append(
                np.abs(target.counts - probs * n).sum() / n
            )
        assert float(np.mean(errors)) < 0.05

    def test_respects_num_records(self, cat_synopsis):
        records = synthesize(cat_synopsis, num_records=1234, seed=0)
        assert records.num_records == 1234

    def test_codes_within_arity(self, cat_synopsis):
        records = synthesize(cat_synopsis, seed=8)
        for j, b in enumerate(cat_synopsis.arities):
            assert records.data[:, j].min() >= 0
            assert records.data[:, j].max() < b

    def test_binary_synopsis_path(self, binary_synopsis):
        records = synthesize(binary_synopsis, seed=6)
        assert records.domain.is_binary
        assert records.data.max() <= 1
        history = records.meta["history"]
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(history, history[1:])
        )


class TestSyntheticRecords:
    def test_count_and_fraction(self, cat_synopsis):
        records = synthesize(cat_synopsis, seed=3)
        name = records.domain.names[1]
        total = sum(
            records.count(**{name: v})
            for v in range(records.domain.arities[1])
        )
        assert total == records.num_records
        assert records.fraction(**{name: 0}) == (
            records.count(**{name: 0}) / records.num_records
        )

    def test_export_round_trip(self, cat_synopsis, tmp_path):
        records = synthesize(cat_synopsis, num_records=500, seed=3)
        csv_path = records.to_csv(tmp_path / "out.csv", decode=False)
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].split(",") == list(records.domain.names)
        assert len(lines) == 501
        jsonl_path = records.to_jsonl(tmp_path / "out.jsonl")
        assert len(jsonl_path.read_text().strip().splitlines()) == 500


class TestRecordSampler:
    def test_seeded_draws_reproduce(self, cat_synopsis):
        sampler = RecordSampler(synthesize(cat_synopsis, seed=1), seed=0)
        np.testing.assert_array_equal(
            sampler.sample(64, seed=5), sampler.sample(64, seed=5)
        )

    def test_unseeded_draws_differ(self, cat_synopsis):
        sampler = RecordSampler(synthesize(cat_synopsis, seed=1), seed=0)
        assert not np.array_equal(sampler.sample(256), sampler.sample(256))

    def test_batches_total(self, cat_synopsis):
        sampler = RecordSampler(synthesize(cat_synopsis, seed=1), seed=0)
        chunks = list(sampler.batches(1000, 300, seed=2))
        assert [len(c) for c in chunks] == [300, 300, 300, 100]
