"""Domain schemas through save/load and the synopsis store."""

import json

import numpy as np
import pytest

from repro.categorical.dataset import CategoricalDataset
from repro.categorical.priview import CategoricalPriView, CategoricalSynopsis
from repro.core.priview import PriView
from repro.core.serialization import load_synopsis, save_synopsis
from repro.exceptions import SynopsisIntegrityError
from repro.marginals.dataset import BinaryDataset
from repro.marginals.domain import Attribute, Domain
from repro.store import SynopsisStore


@pytest.fixture(scope="module")
def domain() -> Domain:
    return Domain((
        Attribute("age", 4, kind="numeric", bins=(0.0, 25, 45, 65, 100)),
        Attribute("job", 3, labels=("none", "blue", "white")),
        Attribute("flag", 2),
        Attribute("kids", 4, kind="ordinal"),
    ))


@pytest.fixture(scope="module")
def cat_synopsis(domain) -> CategoricalSynopsis:
    ds = CategoricalDataset.random(8000, domain, rng=np.random.default_rng(1))
    return CategoricalPriView(epsilon=2.0, seed=2).fit(ds)


def _rewrite_header(path, mutate):
    """Re-save the .npz with a mutated header, arrays untouched."""
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        arrays = {
            name: archive[name] for name in archive.files if name != "header"
        }
    mutate(header)
    np.savez_compressed(path, header=json.dumps(header), **arrays)


class TestCategoricalRoundTrip:
    def test_save_load_preserves_everything(self, cat_synopsis, tmp_path):
        path = save_synopsis(cat_synopsis, tmp_path / "cat.npz")
        again = load_synopsis(path)
        assert isinstance(again, CategoricalSynopsis)
        assert again.arities == cat_synopsis.arities
        assert again.domain == cat_synopsis.domain
        assert again.num_views == cat_synopsis.num_views
        for a, b in zip(again.views, cat_synopsis.views):
            assert a.attrs == b.attrs
            assert a.arities == b.arities
            np.testing.assert_array_equal(a.counts, b.counts)

    def test_reconstruction_survives_round_trip(self, cat_synopsis, tmp_path):
        path = save_synopsis(cat_synopsis, tmp_path / "cat.npz")
        again = load_synopsis(path)
        target = cat_synopsis.views[0].attrs[:2]
        np.testing.assert_allclose(
            again.marginal(target).counts,
            cat_synopsis.marginal(target).counts,
        )

    def test_binary_synopsis_with_domain(self, tmp_path):
        dom = Domain.binary(6, names=tuple("abcdef"))
        ds = BinaryDataset.random(4000, 6, rng=np.random.default_rng(0))
        ds.domain = dom
        synopsis = PriView(epsilon=1.0, seed=1).fit(ds)
        assert synopsis.domain is dom
        again = load_synopsis(save_synopsis(synopsis, tmp_path / "b.npz"))
        assert again.domain == dom

    def test_domainless_files_still_load(self, cat_synopsis, tmp_path):
        bare = CategoricalSynopsis(
            views=cat_synopsis.views,
            arities=cat_synopsis.arities,
            epsilon=cat_synopsis.epsilon,
        )
        again = load_synopsis(save_synopsis(bare, tmp_path / "bare.npz"))
        assert again.domain is None


class TestTampering:
    def test_tampered_domain_fails_digest(self, cat_synopsis, tmp_path):
        path = save_synopsis(cat_synopsis, tmp_path / "cat.npz")

        def mutate(header):
            # valid schema, silently different binning — the payload
            # digest covers the schema, so this must not load
            header["domain"]["attributes"][0]["bins"][1] = 30.0

        _rewrite_header(path, mutate)
        with pytest.raises(SynopsisIntegrityError):
            load_synopsis(path)

    def test_undecodable_domain_schema_raises(self, cat_synopsis, tmp_path):
        path = save_synopsis(cat_synopsis, tmp_path / "cat.npz")
        _rewrite_header(
            path, lambda header: header.update(domain={"garbage": 1})
        )
        with pytest.raises(SynopsisIntegrityError):
            load_synopsis(path)

    def test_unknown_kind_raises(self, cat_synopsis, tmp_path):
        path = save_synopsis(cat_synopsis, tmp_path / "cat.npz")
        _rewrite_header(path, lambda header: header.update(kind="exotic"))
        with pytest.raises(SynopsisIntegrityError):
            load_synopsis(path)


class TestStoreIntegration:
    def test_publish_and_load_categorical(self, cat_synopsis, tmp_path):
        store = SynopsisStore(tmp_path / "store")
        path = save_synopsis(cat_synopsis, tmp_path / "cat.npz")
        info = store.publish("mixed", path)
        assert info.domain is not None
        assert [a["name"] for a in info.domain["attributes"]] == [
            "age", "job", "flag", "kids",
        ]
        again = store.get("mixed")
        assert isinstance(again, CategoricalSynopsis)
        assert again.domain == cat_synopsis.domain

    def test_manifest_domain_round_trips(self, cat_synopsis, tmp_path):
        store = SynopsisStore(tmp_path / "store")
        path = save_synopsis(cat_synopsis, tmp_path / "cat.npz")
        store.publish("mixed", path)
        reopened = SynopsisStore(tmp_path / "store", create=False)
        info = reopened.resolve("mixed")
        assert Domain.from_json(info.domain) == cat_synopsis.domain
