"""Domain / Attribute behaviour the synth stack depends on."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.marginals.domain import (
    ATTRIBUTE_KINDS,
    Attribute,
    Domain,
    as_domain,
)


@pytest.fixture
def mixed_domain() -> Domain:
    return Domain((
        Attribute("age", 4, kind="numeric", bins=(0.0, 20, 40, 60, 80)),
        Attribute("job", 3, labels=("none", "blue", "white")),
        Attribute("flag", 2),
        Attribute("kids", 5, kind="ordinal"),
    ))


class TestAttribute:
    def test_kinds_constant(self):
        assert set(ATTRIBUTE_KINDS) == {"categorical", "ordinal", "numeric"}

    def test_numeric_encode_bins_and_clamps(self):
        attr = Attribute("x", 3, kind="numeric", bins=(0.0, 1.0, 2.0, 3.0))
        codes = attr.encode([-5.0, 0.5, 1.5, 2.5, 99.0])
        assert codes.tolist() == [0, 0, 1, 2, 2]

    def test_label_encode_round_trip(self):
        attr = Attribute("job", 3, labels=("none", "blue", "white"))
        codes = attr.encode(["white", "none", "blue"])
        assert codes.tolist() == [2, 0, 1]
        assert attr.decode(codes).tolist() == ["white", "none", "blue"]

    def test_integer_codes_pass_through(self):
        attr = Attribute("k", 4, kind="ordinal")
        assert attr.encode([3, 0, 2]).tolist() == [3, 0, 2]

    def test_arity_floor(self):
        with pytest.raises(DimensionError):
            Attribute("x", 1)

    def test_json_round_trip(self):
        attr = Attribute("age", 4, kind="numeric", bins=(0.0, 20, 40, 60, 80))
        again = Attribute.from_json(attr.to_json())
        assert again == attr


class TestDomain:
    def test_arities_and_names(self, mixed_domain):
        assert mixed_domain.arities == (4, 3, 2, 5)
        assert mixed_domain.names == ("age", "job", "flag", "kids")
        assert mixed_domain.num_attributes == 4
        assert not mixed_domain.is_binary

    def test_binary_factory(self):
        dom = Domain.binary(6)
        assert dom.is_binary
        assert dom.arities == (2,) * 6

    def test_from_arities(self):
        dom = Domain.from_arities((2, 3, 4))
        assert dom.arities == (2, 3, 4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(DimensionError):
            Domain((Attribute("a", 2), Attribute("a", 3)))

    def test_attr_set_by_name_and_index(self, mixed_domain):
        assert tuple(mixed_domain.attr_set(("kids", "age"))) == (0, 3)
        assert tuple(mixed_domain.attr_set((3, 0))) == (0, 3)

    def test_size(self, mixed_domain):
        assert mixed_domain.size() == 4 * 3 * 2 * 5
        assert mixed_domain.size(("age", "flag")) == 8

    def test_encode_decode_records_round_trip(self, mixed_domain):
        rng = np.random.default_rng(0)
        codes = np.stack(
            [rng.integers(0, b, 100) for b in mixed_domain.arities], axis=1
        )
        decoded = mixed_domain.decode_records(codes)
        assert set(decoded) == set(mixed_domain.names)
        again = mixed_domain.encode_records(decoded)
        np.testing.assert_array_equal(again, codes)

    def test_json_round_trip(self, mixed_domain):
        again = Domain.from_json(mixed_domain.to_json())
        assert again == mixed_domain
        assert again.arities == mixed_domain.arities

    def test_as_domain_coercions(self, mixed_domain):
        assert as_domain(mixed_domain) is mixed_domain
        assert as_domain(None, num_attributes=3) == Domain.binary(3)
        assert as_domain((2, 3)).arities == (2, 3)
        assert as_domain(mixed_domain.to_json()) == mixed_domain
        with pytest.raises(DimensionError):
            as_domain(None)
