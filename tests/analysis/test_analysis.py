"""Tests for the closed-form analysis (crossover, ell tables, ESE)."""

import math

import pytest

from repro.analysis.crossover import crossover_table, direct_beats_flat_threshold
from repro.analysis.ell_selection import (
    cells_per_view_table,
    ell_objective_pairs,
    ell_objective_triples,
    ell_table,
    recommended_cells_per_view,
)
from repro.analysis.ese import (
    direct_ese,
    flat_ese,
    fourier_ese,
    priview_views_ese,
    unit_variance,
)
from repro.exceptions import DimensionError


class TestCrossover:
    def test_paper_table_exact(self):
        """Section 3.2: k=2..5 -> d >= 16, 26, 36, 46."""
        assert crossover_table() == {2: 16, 3: 26, 4: 36, 5: 46}

    def test_monotone_in_k(self):
        thresholds = [direct_beats_flat_threshold(k) for k in range(2, 7)]
        assert thresholds == sorted(thresholds)

    def test_invalid_k(self):
        with pytest.raises(DimensionError):
            direct_beats_flat_threshold(0)


class TestEllTable:
    def test_paper_values(self):
        """Spot-check against the Section 4.5 table."""
        table = ell_table()
        assert table[5][0] == pytest.approx(0.283, abs=2e-3)
        assert table[6][0] == pytest.approx(0.267, abs=2e-3)
        assert table[8][0] == pytest.approx(0.286, abs=2e-3)
        assert table[8][1] == pytest.approx(0.048, abs=2e-3)
        assert table[10][1] == pytest.approx(0.044, abs=2e-3)

    def test_pairs_minimum_near_six(self):
        objective = {l: ell_objective_pairs(l) for l in range(4, 14)}
        best = min(objective, key=objective.get)
        assert best in (6, 7)

    def test_triples_minimum_near_ten(self):
        objective = {l: ell_objective_triples(l) for l in range(4, 14)}
        best = min(objective, key=objective.get)
        assert best in (9, 10, 11)

    def test_invalid_ell(self):
        with pytest.raises(DimensionError):
            ell_objective_pairs(1)
        with pytest.raises(DimensionError):
            ell_objective_triples(2)


class TestCellsPerView:
    def test_band_grows_with_arity(self):
        table = cells_per_view_table()
        lows = [table[b][0] for b in (2, 3, 4, 5)]
        highs = [table[b][1] for b in (2, 3, 4, 5)]
        assert highs == sorted(highs)
        assert all(low < high for low, high in zip(lows, highs))

    def test_binary_band_contains_256(self):
        """2**8 cells (the paper's l=8) must be in the b=2 band."""
        low, high = recommended_cells_per_view(2)
        assert low <= 256 <= high

    def test_invalid_base(self):
        with pytest.raises(DimensionError):
            recommended_cells_per_view(1)


class TestESE:
    def test_unit_variance(self):
        assert unit_variance(1.0) == 2.0
        assert unit_variance(0.1) == pytest.approx(200.0)

    def test_flat(self):
        assert flat_ese(16) == 2**16 * 2.0

    def test_direct(self):
        assert direct_ese(16, 2) == 4 * math.comb(16, 2) ** 2 * 2.0

    def test_fourier_below_direct(self):
        assert fourier_ese(16, 3) < direct_ese(16, 3)

    def test_priview_middle_ground_example(self):
        """The Section 4.1 d=16, k=2 worked example: reconstructing a
        pair from one of six 8-way views costs 2^2 * 6^2 * 2^6 =
        9216 V_u, far below Flat's 2^16 V_u and Direct's
        2^2 * C(16,2)^2 V_u."""
        pair_from_view = (2**2) * (6**2) * (2**6) * unit_variance(1.0)
        # Summing the view's 2^8 cells into the pair's 4 groups leaves
        # the total variance unchanged: same number as the full view.
        assert pair_from_view == priview_views_ese(8, 6)
        assert pair_from_view < flat_ese(16)
        assert pair_from_view < direct_ese(16, 2)
