"""Deprecated module shims forward to the shared core."""

import warnings

import pytest


class TestReconstructionShim:
    def test_warns_and_forwards(self):
        import repro.categorical.reconstruction as shim
        from repro.core.reconstruction.categorical import (
            categorical_maxent,
            extract_categorical_constraints,
        )

        with pytest.warns(DeprecationWarning):
            assert shim.categorical_maxent is categorical_maxent
        with pytest.warns(DeprecationWarning):
            assert (
                shim.extract_categorical_constraints
                is extract_categorical_constraints
            )

    def test_unknown_attribute_raises(self):
        import repro.categorical.reconstruction as shim

        with pytest.raises(AttributeError):
            shim.does_not_exist

    def test_dir_lists_moved_names(self):
        import repro.categorical.reconstruction as shim

        assert "categorical_maxent" in dir(shim)


class TestNonnegativityShim:
    def test_warns_and_forwards(self):
        import repro.categorical.nonnegativity as shim
        from repro.core.nonnegativity import categorical_ripple

        with pytest.warns(DeprecationWarning):
            assert shim.categorical_ripple is categorical_ripple

    def test_core_import_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core.nonnegativity import categorical_ripple  # noqa: F401
            from repro.core.reconstruction import reconstruct_mixed  # noqa: F401
