"""Tests for categorical views, Ripple, reconstruction and pipeline."""

import itertools

import numpy as np
import pytest

from repro.categorical.dataset import CategoricalDataset
from repro.categorical.nonnegativity import categorical_ripple
from repro.categorical.priview import CategoricalPriView
from repro.categorical.table import CategoricalMarginalTable
from repro.categorical.views import select_categorical_views
from repro.exceptions import DesignError, PrivacyBudgetError


@pytest.fixture
def mixed_dataset(rng) -> CategoricalDataset:
    """Correlated mixed-arity data via a latent class."""
    arities = (3, 4, 2, 5, 3, 2)
    n = 20_000
    latent = rng.integers(0, 3, n)
    columns = []
    for b in arities:
        prefs = rng.dirichlet(np.ones(b), size=3)
        cdf = prefs[latent].cumsum(axis=1)
        columns.append((rng.random((n, 1)) > cdf[:, :-1]).sum(axis=1))
    return CategoricalDataset(np.stack(columns, axis=1), arities)


class TestViewSelection:
    def test_covers_all_pairs(self, rng):
        arities = (3, 4, 2, 5, 3, 2, 4)
        views = select_categorical_views(arities, max_cells=200, rng=rng)
        covered = set()
        for view in views:
            covered.update(itertools.combinations(view, 2))
        assert covered == set(itertools.combinations(range(7), 2))

    def test_respects_cell_budget(self, rng):
        import math

        arities = (5, 5, 4, 4, 3, 3)
        budget = 100
        views = select_categorical_views(arities, max_cells=budget, rng=rng)
        for view in views:
            assert math.prod(arities[a] for a in view) <= budget

    def test_budget_too_small_rejected(self, rng):
        with pytest.raises(DesignError):
            select_categorical_views((5, 5), max_cells=20, rng=rng)

    def test_default_budget_from_guideline(self, rng):
        views = select_categorical_views((3, 3, 3, 3, 3), rng=rng)
        assert views  # guideline produced a feasible budget

    def test_invalid_arities(self, rng):
        with pytest.raises(DesignError):
            select_categorical_views((1, 3), rng=rng)


class TestCategoricalRipple:
    def test_preserves_total_and_bound(self, rng):
        counts = rng.laplace(scale=10, size=24) + 8
        table = CategoricalMarginalTable((0, 1, 2), (3, 2, 4), counts.copy())
        categorical_ripple(table, theta=0.5)
        assert table.total() == pytest.approx(counts.sum(), abs=1e-8)
        assert table.counts.min() >= -0.5 - 1e-9

    def test_spread_to_value_neighbours(self):
        # arities (3,): neighbours of cell 0 are cells 1 and 2
        table = CategoricalMarginalTable((0,), (3,), np.array([-6.0, 9.0, 9.0]))
        categorical_ripple(table, theta=1.0)
        assert table.counts[0] == 0.0
        assert table.counts[1] == pytest.approx(6.0)
        assert table.counts[2] == pytest.approx(6.0)


class TestPipeline:
    def test_synopsis_consistent(self, mixed_dataset):
        synopsis = CategoricalPriView(1.0, max_cells=120, seed=0).fit(
            mixed_dataset
        )
        for a, b in itertools.combinations(synopsis.views, 2):
            shared = tuple(sorted(set(a.attrs) & set(b.attrs)))
            assert np.allclose(
                a.project(shared).counts,
                b.project(shared).counts,
                atol=1e-6,
            )

    def test_covered_query_accuracy(self, mixed_dataset):
        synopsis = CategoricalPriView(2.0, max_cells=120, seed=0).fit(
            mixed_dataset
        )
        view = synopsis.views[0]
        attrs = view.attrs[:2]
        truth = mixed_dataset.marginal(attrs)
        estimate = synopsis.marginal(attrs)
        err = np.linalg.norm(estimate.counts - truth.counts)
        err /= mixed_dataset.num_records
        assert err < 0.05

    def test_uncovered_query_beats_uniform(self, mixed_dataset):
        synopsis = CategoricalPriView(2.0, max_cells=60, seed=1).fit(
            mixed_dataset
        )
        n = mixed_dataset.num_records
        for attrs in [(0, 2, 4), (1, 3, 5)]:
            if synopsis.is_covered(attrs):
                continue
            truth = mixed_dataset.marginal(attrs)
            estimate = synopsis.marginal(attrs)
            uniform = CategoricalMarginalTable.uniform(
                truth.attrs, truth.arities, truth.total()
            )
            err = np.linalg.norm(estimate.counts - truth.counts)
            uniform_err = np.linalg.norm(uniform.counts - truth.counts)
            assert err < uniform_err

    def test_noise_free_coverage_only(self, mixed_dataset):
        synopsis = CategoricalPriView(
            float("inf"), max_cells=120, seed=0
        ).fit(mixed_dataset)
        view = synopsis.views[0]
        assert np.allclose(
            view.counts,
            mixed_dataset.marginal(view.attrs).counts,
            atol=1e-6,
        )

    def test_explicit_views(self, mixed_dataset):
        synopsis = CategoricalPriView(
            1.0, views=[(0, 1, 2), (2, 3, 4, 5), (0, 4, 5)], seed=0
        ).fit(mixed_dataset)
        assert synopsis.num_views == 3

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            CategoricalPriView(0.0)

    def test_total_count(self, mixed_dataset):
        synopsis = CategoricalPriView(1.0, max_cells=120, seed=0).fit(
            mixed_dataset
        )
        assert synopsis.total_count() == pytest.approx(
            mixed_dataset.num_records, rel=0.05
        )
