"""Tests for categorical tables and datasets."""

import numpy as np
import pytest

from repro.categorical.dataset import CategoricalDataset
from repro.categorical.table import CategoricalMarginalTable
from repro.exceptions import DimensionError


@pytest.fixture
def cat_dataset(rng) -> CategoricalDataset:
    return CategoricalDataset.random(3000, (3, 4, 2, 5), rng=rng)


class TestTable:
    def test_sorted_attrs_keep_arity_alignment(self):
        table = CategoricalMarginalTable((5, 2), (3, 4), np.zeros(12))
        assert table.attrs == (2, 5)
        assert table.arities == (4, 3)

    def test_rejects_bad_shape(self):
        with pytest.raises(DimensionError):
            CategoricalMarginalTable((0, 1), (3, 2), np.zeros(5))

    def test_rejects_unary_attribute(self):
        with pytest.raises(DimensionError):
            CategoricalMarginalTable((0,), (1,), np.zeros(1))

    def test_projection_preserves_total(self, rng):
        table = CategoricalMarginalTable(
            (0, 1, 2), (3, 2, 4), rng.random(24)
        )
        for sub in [(0,), (1, 2), ()]:
            assert table.project(sub).total() == pytest.approx(table.total())

    def test_projection_composes(self, rng):
        table = CategoricalMarginalTable(
            (0, 1, 2), (3, 2, 4), rng.random(24)
        )
        direct = table.project((2,))
        via = table.project((1, 2)).project((2,))
        assert np.allclose(direct.counts, via.counts)

    def test_consistency_update_reaches_target(self, rng):
        table = CategoricalMarginalTable(
            (0, 1), (3, 4), rng.random(12) * 10
        )
        target = CategoricalMarginalTable((0,), (3,), np.array([5.0, 3.0, 2.0]))
        table.consistency_update(target)
        assert np.allclose(table.project((0,)).counts, target.counts)

    def test_consistency_update_lemma1(self, rng):
        """Total-preserving update on one attr leaves the other."""
        table = CategoricalMarginalTable(
            (0, 1), (3, 4), rng.random(12) * 10
        )
        current = table.project((0,)).counts
        perturbation = np.array([1.0, -0.5, -0.5])
        target = CategoricalMarginalTable((0,), (3,), current + perturbation)
        before = table.project((1,)).counts.copy()
        table.consistency_update(target)
        assert np.allclose(table.project((1,)).counts, before)

    def test_uniform_and_normalized(self):
        table = CategoricalMarginalTable.uniform((0, 1), (3, 2), 60.0)
        assert np.allclose(table.counts, 10.0)
        assert table.normalized().sum() == pytest.approx(1.0)


class TestDataset:
    def test_shape(self, cat_dataset):
        assert cat_dataset.num_records == 3000
        assert cat_dataset.num_attributes == 4

    def test_rejects_out_of_range_values(self):
        with pytest.raises(DimensionError):
            CategoricalDataset(np.array([[3]]), (3,))

    def test_rejects_mismatched_arities(self):
        with pytest.raises(DimensionError):
            CategoricalDataset(np.zeros((2, 3), dtype=int), (3, 2))

    def test_marginal_total(self, cat_dataset):
        assert cat_dataset.marginal((0, 2)).total() == 3000.0

    def test_marginal_matches_manual(self):
        data = np.array([[0, 1], [2, 0], [2, 1], [2, 1]])
        ds = CategoricalDataset(data, (3, 2))
        table = ds.marginal((0, 1))
        # cell = a0 + 3*a1
        assert table.counts[2] == 1  # (2, 0)
        assert table.counts[3] == 1  # (0, 1)
        assert table.counts[5] == 2  # (2, 1)

    def test_marginal_projection_consistency(self, cat_dataset):
        big = cat_dataset.marginal((0, 1, 3))
        small = cat_dataset.marginal((1, 3))
        assert np.allclose(big.project((1, 3)).counts, small.counts)

    def test_data_read_only(self, cat_dataset):
        with pytest.raises(ValueError):
            cat_dataset.data[0, 0] = 1
