"""Tests for mixed-radix indexing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.categorical.indexing import (
    categorical_neighbours,
    mixed_radix_projection_map,
    strides,
    table_size,
)
from repro.exceptions import DimensionError


class TestBasics:
    def test_table_size(self):
        assert table_size((3, 4, 2)) == 24
        assert table_size(()) == 1

    def test_strides(self):
        assert strides((3, 4, 2)) == (1, 3, 12)

    def test_binary_special_case(self):
        """With all-2 arities the map matches the binary projection."""
        from repro.marginals.projection import projection_map

        binary = projection_map(4, (1, 3))
        categorical = mixed_radix_projection_map((2, 2, 2, 2), (1, 3))
        assert np.array_equal(binary, categorical)


class TestProjectionMap:
    def test_identity(self):
        pmap = mixed_radix_projection_map((3, 2), (0, 1))
        assert np.array_equal(pmap, np.arange(6))

    def test_single_attribute(self):
        pmap = mixed_radix_projection_map((3, 2), (0,))
        # cells: (a0, a1) = (i%3, i//3)
        assert np.array_equal(pmap, [0, 1, 2, 0, 1, 2])

    def test_out_of_range(self):
        with pytest.raises(DimensionError):
            mixed_radix_projection_map((3, 2), (2,))

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_balanced_partition(self, data):
        arities = tuple(
            data.draw(
                st.lists(st.integers(2, 4), min_size=1, max_size=4)
            )
        )
        k = data.draw(st.integers(0, len(arities)))
        positions = tuple(
            sorted(
                data.draw(
                    st.sets(
                        st.integers(0, len(arities) - 1), min_size=k, max_size=k
                    )
                )
            )
        )
        pmap = mixed_radix_projection_map(arities, positions)
        sub_size = table_size([arities[p] for p in positions])
        counts = np.bincount(pmap, minlength=sub_size)
        assert np.all(counts == table_size(arities) // sub_size)


class TestNeighbours:
    def test_degree(self):
        nb = categorical_neighbours((3, 4))
        assert nb.shape == (12, (3 - 1) + (4 - 1))

    def test_binary_matches_bitflip(self):
        from repro.marginals.projection import cell_neighbours

        categorical = np.sort(categorical_neighbours((2, 2, 2)), axis=1)
        binary = np.sort(cell_neighbours(3), axis=1)
        assert np.array_equal(categorical, binary)

    def test_neighbours_differ_in_one_digit(self):
        arities = (3, 2, 4)
        nb = categorical_neighbours(arities)
        s = strides(arities)
        for cell in range(table_size(arities)):
            for other in nb[cell]:
                digits_a = [(cell // s[j]) % arities[j] for j in range(3)]
                digits_b = [(other // s[j]) % arities[j] for j in range(3)]
                diff = sum(a != b for a, b in zip(digits_a, digits_b))
                assert diff == 1
