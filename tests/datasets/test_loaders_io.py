"""Tests for dataset loaders and persistence."""

import numpy as np
import pytest

from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.loaders import (
    load_fimi_transactions,
    load_msnbc_sequences,
    load_or_synthesize,
)
from repro.exceptions import DatasetError
from repro.marginals.dataset import BinaryDataset


class TestFimiLoader:
    def test_parses_and_keeps_top_items(self, tmp_path):
        path = tmp_path / "toy.dat"
        path.write_text("1 2 3\n2 3\n3\n2 3 9\n")
        ds = load_fimi_transactions(path, num_attributes=2)
        assert ds.num_records == 4
        # items by frequency: 3 (4x), 2 (3x) -> indices 0, 1
        assert np.array_equal(
            ds.data, [[1, 1], [1, 1], [1, 0], [1, 1]]
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_fimi_transactions(tmp_path / "nope.dat", 5)


class TestMsnbcLoader:
    def test_parses_sequences(self, tmp_path):
        path = tmp_path / "msnbc.seq"
        path.write_text("% comment\n1 1 2\n2 3\n1\n")
        ds = load_msnbc_sequences(path, num_attributes=2)
        assert ds.num_records == 3
        # categories by frequency: 1 (2 users), 2 (2 users) -> ties fine
        assert ds.num_attributes == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_msnbc_sequences(tmp_path / "nope.seq")


class TestLoadOrSynthesize:
    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_or_synthesize("census")

    def test_synthesizes_without_data_dir(self, rng, monkeypatch):
        monkeypatch.delenv("REPRO_DATA_DIR", raising=False)
        ds = load_or_synthesize("msnbc", num_records=200, rng=rng)
        assert ds.num_records == 200
        assert ds.num_attributes == 9

    def test_prefers_real_file(self, tmp_path, rng):
        (tmp_path / "kosarak.dat").write_text("1 2\n2 3\n" * 50)
        ds = load_or_synthesize("kosarak", data_dir=tmp_path)
        assert ds.name == "kosarak"
        assert ds.num_records == 100

    def test_truncates_real_file(self, tmp_path):
        (tmp_path / "kosarak.dat").write_text("1 2\n2 3\n" * 50)
        ds = load_or_synthesize("kosarak", data_dir=tmp_path, num_records=10)
        assert ds.num_records == 10


class TestDatasetIO:
    def test_round_trip(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "tiny.npz")
        again = load_dataset(path)
        assert np.array_equal(again.data, tiny_dataset.data)
        assert again.name == tiny_dataset.name

    def test_round_trip_odd_width(self, tmp_path, rng):
        """d not divisible by 8 exercises the bit-packing edge."""
        ds = BinaryDataset.random(40, 13, rng=rng)
        path = save_dataset(ds, tmp_path / "odd.npz")
        assert np.array_equal(load_dataset(path).data, ds.data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "missing.npz")
