"""Tests for the MCHAIN generator (Section 5 recipe)."""

import numpy as np
import pytest

from repro.datasets.mchain import (
    markov_chain_dataset,
    next_bit_probability,
    stationary_distribution,
)
from repro.exceptions import DatasetError


class TestNextBitProbability:
    def test_balanced_history_gives_half(self):
        assert next_bit_probability(2, 1) == pytest.approx(0.5)
        assert next_bit_probability(4, 2) == pytest.approx(0.5)

    def test_all_zero_history(self):
        assert next_bit_probability(3, 0) == pytest.approx(0.75)

    def test_all_one_history(self):
        assert next_bit_probability(3, 3) == pytest.approx(0.25)

    def test_vectorised(self):
        probs = next_bit_probability(2, np.array([0, 1, 2]))
        assert np.allclose(probs, [0.75, 0.5, 0.25])

    def test_invalid_order(self):
        with pytest.raises(DatasetError):
            next_bit_probability(0, 0)


class TestStationaryDistribution:
    @pytest.mark.parametrize("order", [1, 2, 3, 5])
    def test_sums_to_one(self, order):
        dist = stationary_distribution(order)
        assert dist.sum() == pytest.approx(1.0)
        assert dist.min() >= 0

    def test_is_fixed_point(self):
        from repro.datasets.mchain import _transition_matrix

        order = 3
        dist = stationary_distribution(order)
        assert np.allclose(dist @ _transition_matrix(order), dist, atol=1e-10)

    def test_symmetric_chain_uniform_marginal(self):
        """The chain is 0/1-symmetric, so P(bit=1) = 1/2 stationary."""
        order = 2
        dist = stationary_distribution(order)
        ones = np.array([bin(s).count("1") for s in range(4)])
        p_one = dist[ones >= 1][ones[ones >= 1] == 1].sum()  # exactly 1 one
        # complement symmetry: dist[s] == dist[~s & mask]
        assert dist[0] == pytest.approx(dist[3], abs=1e-10)


class TestGenerator:
    def test_shape_and_name(self, rng):
        ds = markov_chain_dataset(3, 200, length=32, rng=rng)
        assert ds.num_records == 200
        assert ds.num_attributes == 32
        assert ds.name == "mchain_3"

    def test_marginal_bit_balance(self, rng):
        ds = markov_chain_dataset(2, 20_000, length=16, rng=rng)
        means = ds.attribute_means()
        assert np.all(np.abs(means - 0.5) < 0.02)

    def test_negative_correlation_structure(self, rng):
        """Order-1: P(1|1) = 0.25, so adjacent bits anti-correlate."""
        ds = markov_chain_dataset(1, 30_000, length=8, rng=rng)
        data = ds.data.astype(float)
        corr = np.corrcoef(data[:, 3], data[:, 4])[0, 1]
        assert corr < -0.3

    def test_dependence_range_matches_order(self, rng):
        """Bits far beyond the order are nearly independent."""
        ds = markov_chain_dataset(1, 30_000, length=12, rng=rng)
        data = ds.data.astype(float)
        far = abs(np.corrcoef(data[:, 0], data[:, 8])[0, 1])
        near = abs(np.corrcoef(data[:, 0], data[:, 1])[0, 1])
        assert far < near / 3

    def test_length_shorter_than_order_rejected(self, rng):
        with pytest.raises(DatasetError):
            markov_chain_dataset(5, 10, length=3, rng=rng)

    def test_deterministic_with_seed(self):
        a = markov_chain_dataset(2, 50, length=10, rng=np.random.default_rng(1))
        b = markov_chain_dataset(2, 50, length=10, rng=np.random.default_rng(1))
        assert np.array_equal(a.data, b.data)
