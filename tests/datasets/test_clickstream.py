"""Tests for the synthetic click-stream generators."""

import numpy as np
import pytest

from repro.datasets.clickstream import (
    aol_like,
    clickstream_dataset,
    kosarak_like,
    msnbc_like,
)
from repro.exceptions import DatasetError


class TestClickstreamDataset:
    def test_shape(self, rng):
        ds = clickstream_dataset(1000, 16, rng=rng)
        assert ds.num_records == 1000
        assert ds.num_attributes == 16

    def test_popularity_heavy_tailed(self, rng):
        """Zipf base: early attributes far more popular than late."""
        ds = clickstream_dataset(20_000, 24, zipf_exponent=1.2, rng=rng)
        means = ds.attribute_means()
        assert means[0] > 3 * means[-1]

    def test_rows_are_sparse(self, rng):
        ds = clickstream_dataset(5000, 32, rng=rng)
        assert ds.data.mean() < 0.4

    def test_attributes_positively_correlated(self, rng):
        """Shared user activity induces positive correlation."""
        ds = clickstream_dataset(30_000, 12, rng=rng)
        data = ds.data.astype(float)
        corr = np.corrcoef(data.T)
        off_diag = corr[np.triu_indices(12, k=1)]
        assert np.mean(off_diag) > 0.02

    def test_invalid_shape(self, rng):
        with pytest.raises(DatasetError):
            clickstream_dataset(10, 0, rng=rng)

    def test_deterministic_with_seed(self):
        a = clickstream_dataset(100, 8, rng=np.random.default_rng(3))
        b = clickstream_dataset(100, 8, rng=np.random.default_rng(3))
        assert np.array_equal(a.data, b.data)


class TestNamedGenerators:
    def test_kosarak_like_dimensions(self, rng):
        ds = kosarak_like(num_records=500, rng=rng)
        assert ds.num_attributes == 32
        assert ds.name == "kosarak-like"

    def test_aol_like_dimensions(self, rng):
        ds = aol_like(num_records=500, rng=rng)
        assert ds.num_attributes == 45

    def test_msnbc_like_dimensions(self, rng):
        ds = msnbc_like(num_records=500, rng=rng)
        assert ds.num_attributes == 9

    def test_default_record_counts_match_paper(self):
        """Full-size defaults use the published N values (checked
        without generating: the defaults are module constants)."""
        from repro.datasets.clickstream import (
            AOL_RECORDS,
            KOSARAK_RECORDS,
            MSNBC_RECORDS,
        )

        assert KOSARAK_RECORDS == 912_627
        assert AOL_RECORDS == 647_377
        assert MSNBC_RECORDS == 989_818
