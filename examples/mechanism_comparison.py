"""Scenario: choosing a release mechanism for a small survey (d=9).

Run:  python examples/mechanism_comparison.py

A survey owner with nine binary questions wants the most accurate
private release.  At d=9 every method in the paper still runs, so this
example races them all on the same queries — a miniature Figure 1 —
and prints a ranked table.  It also shows the analytic crossover
reasoning from Section 3.2 (why Flat, not Direct, is the right basic
mechanism at this dimensionality).
"""

import numpy as np

from repro import PriView
from repro.analysis import crossover_table
from repro.baselines import (
    DataCubeMethod,
    DirectMethod,
    FlatMethod,
    FourierLPMethod,
    FourierMethod,
    LearningMethod,
    MWEMMethod,
    UniformMethod,
)
from repro.covering.repository import best_design
from repro.datasets import msnbc_like
from repro.marginals.queries import random_attribute_sets
from repro.metrics import normalized_l2_error

EPSILON = 1.0
K = 3


def main() -> None:
    rng = np.random.default_rng(99)
    dataset = msnbc_like(num_records=150_000, rng=rng)
    n, d = dataset.num_records, dataset.num_attributes
    queries = random_attribute_sets(d, K, 30, rng)

    print("Section 3.2 crossover: Direct overtakes Flat only at")
    for k, threshold in crossover_table().items():
        print(f"  k={k}: d >= {threshold}")
    print(f"here d={d}, so Flat-like methods should win.\n")

    design = best_design(d, 6, 2)  # the paper's MSNBC design C_2(6,3)
    mechanisms = {
        f"PriView {design.notation}": lambda: PriView(
            EPSILON, design=design, seed=0
        ).fit(dataset),
        "Flat": lambda: FlatMethod(
            EPSILON, nonnegativity="global", seed=0
        ).fit(dataset),
        "DataCube": lambda: DataCubeMethod(EPSILON, K, seed=0).fit(dataset),
        "Direct": lambda: DirectMethod(EPSILON, K, seed=0).fit(dataset),
        "Fourier": lambda: FourierMethod(EPSILON, K, seed=0).fit(dataset),
        "FourierLP": lambda: FourierLPMethod(EPSILON, K, seed=0).fit(dataset),
        "MWEM": lambda: MWEMMethod(
            EPSILON, K, replays=25, seed=0
        ).fit(dataset),
        "Learning (gamma=1/4)": lambda: LearningMethod(
            EPSILON, K, gamma=0.25, seed=0
        ).fit(dataset),
        "Uniform": lambda: UniformMethod(EPSILON, seed=0).fit(dataset),
    }

    scores = {}
    for name, factory in mechanisms.items():
        mechanism = factory()
        scores[name] = np.mean(
            [
                normalized_l2_error(
                    mechanism.marginal(q), dataset.marginal(q), n
                )
                for q in queries
            ]
        )

    print(f"mean normalized L2 over {len(queries)} random {K}-way marginals:")
    for name, err in sorted(scores.items(), key=lambda kv: kv[1]):
        print(f"  {name:<24} {err:.3e}")


if __name__ == "__main__":
    main()
