"""Scenario: releasing correlated sequence data (the MCHAIN study).

Run:  python examples/correlated_sequences.py

Reproduces the Section 5.5 investigation in miniature: how well does a
pairs-only covering design capture higher-order correlation?  We
generate Markov-chain datasets of increasing order over 64 binary
positions, publish a PriView synopsis with the affine-plane design
C_2(8,72) — constructed algebraically, exactly the design the paper
used — and measure reconstruction error on consecutive windows, which
maximally stress the chain dependencies.

The paper's finding to look for in the output: order 3 is the worst
case (4-way correlation, only pairs covered), while both lower and
higher orders reconstruct more accurately.
"""

import numpy as np

from repro import PriView
from repro.covering import affine_plane_design
from repro.datasets import markov_chain_dataset
from repro.marginals.queries import consecutive_attribute_sets
from repro.metrics import normalized_l2_error

EPSILON = 1.0
RECORDS = 100_000
K = 6


def main() -> None:
    design = affine_plane_design(8)  # 64 points, 72 lines: C_2(8,72)
    design.validate()
    print(
        f"design {design.notation}: the affine plane AG(2,8); every pair "
        "of the 64 attributes lies on exactly one line"
    )

    print(f"\nk={K} consecutive-window error by Markov order:")
    for order in range(1, 8):
        rng = np.random.default_rng(100 + order)
        dataset = markov_chain_dataset(order, RECORDS, rng=rng)
        synopsis = PriView(EPSILON, design=design, seed=order).fit(dataset)
        windows = consecutive_attribute_sets(64, K)[:: 64 // 8]  # spread out
        errors = [
            normalized_l2_error(
                synopsis.marginal(w), dataset.marginal(w), RECORDS
            )
            for w in windows
        ]
        bar = "#" * int(np.mean(errors) * 4000)
        print(f"  order {order}: mean L2/N = {np.mean(errors):.2e} {bar}")

    print(
        "\nExpected shape (cf. Figure 5): a bump at order 3, where four"
        "\nattributes are strongly correlated but only pairs are covered."
    )


if __name__ == "__main__":
    main()
