"""Scenario: a categorical survey release (the Section 4.7 extension).

Run:  python examples/categorical_survey.py

A health survey with mixed-arity questions — age band (5 values),
region (4), smoker (2), income band (5), exercise frequency (3),
insurance type (4) — is released as a PriView synopsis.  The binary
machinery of the paper's main sections does not apply directly;
Section 4.7 sketches the changes, all implemented in
``repro.categorical``:

* views are chosen by *cell budget* (the paper's ``s`` guideline)
  rather than a fixed attribute count;
* Ripple redistributes to change-one-value neighbours;
* consistency and max-entropy reconstruction run unchanged over
  mixed-radix tables.
"""

import numpy as np

from repro.analysis.ell_selection import recommended_cells_per_view
from repro.categorical import CategoricalDataset, CategoricalPriView

QUESTIONS = {
    "age_band": 5,
    "region": 4,
    "smoker": 2,
    "income_band": 5,
    "exercise": 3,
    "insurance": 4,
}
EPSILON = 1.0
RECORDS = 120_000


def synthesize_survey(rng: np.random.Generator) -> CategoricalDataset:
    """Latent 'lifestyle' classes induce realistic cross-correlations."""
    arities = tuple(QUESTIONS.values())
    lifestyle = rng.integers(0, 4, RECORDS)
    columns = []
    for arity in arities:
        prefs = rng.dirichlet(np.ones(arity) * 0.8, size=4)
        cdf = prefs[lifestyle].cumsum(axis=1)
        columns.append((rng.random((RECORDS, 1)) > cdf[:, :-1]).sum(axis=1))
    return CategoricalDataset(
        np.stack(columns, axis=1), arities, name="health-survey"
    )


def main() -> None:
    rng = np.random.default_rng(47)
    dataset = synthesize_survey(rng)
    names = list(QUESTIONS)
    print(f"dataset: {dataset}")

    mean_arity = round(np.mean(dataset.arities))
    low, high = recommended_cells_per_view(min(mean_arity, 5))
    print(
        f"Section 4.7 guideline for b~{mean_arity}: "
        f"{low}..{high} cells per view"
    )

    synopsis = CategoricalPriView(EPSILON, seed=3).fit(dataset)
    print(f"published {synopsis.num_views} views:")
    for attrs in synopsis.metadata["view_attrs"]:
        import math

        cells = math.prod(dataset.arities[a] for a in attrs)
        print(f"  {[names[a] for a in attrs]} ({cells} cells)")

    print("\nanalyst queries (normalized L2 error vs truth):")
    for attrs in [(0, 2), (2, 3), (0, 3, 4), (1, 2, 5)]:
        private = synopsis.marginal(attrs)
        truth = dataset.marginal(attrs)
        err = np.linalg.norm(private.counts - truth.counts) / RECORDS
        label = " x ".join(names[a] for a in attrs)
        covered = "covered" if synopsis.is_covered(attrs) else "reconstructed"
        print(f"  {label:<38} L2/N = {err:.2e} ({covered})")

    # a concrete statistic: smoking rate by age band
    table = synopsis.marginal((0, 2)).counts.reshape(2, 5)  # [smoker, age]
    truth = dataset.marginal((0, 2)).counts.reshape(2, 5)
    print("\nsmoking rate by age band (private vs true):")
    for band in range(5):
        private_rate = table[1, band] / max(table[:, band].sum(), 1e-9)
        true_rate = truth[1, band] / truth[:, band].sum()
        print(f"  band {band}: {private_rate:.3f} vs {true_rate:.3f}")


if __name__ == "__main__":
    main()
