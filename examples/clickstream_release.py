"""Scenario: a news portal publishes private page-visit statistics.

Run:  python examples/clickstream_release.py

The paper's motivating use case: a portal with heavy-tailed page
popularity (Kosarak-like, d=32) wants to publish a synopsis from which
analysts can compute co-visitation tables — "of the users who visited
pages A and B, how many also visited C?" — without the portal answering
each question interactively.

The example demonstrates:
* choosing the covering strength from (N, d, epsilon) as in Section 4.5;
* auditing the published views (consistency, non-negativity);
* answering analyst-style conditional queries from reconstructed
  marginals only.
"""

import numpy as np

from repro import PriView
from repro.core.view_selection import choose_strength, priview_noise_error
from repro.covering.repository import best_design
from repro.datasets import kosarak_like


def conditional_visit_rate(table, condition_attrs, condition_values, target_attr):
    """P(target = 1 | conditions) computed from a marginal table."""
    attrs = table.attrs
    total = 0.0
    hits = 0.0
    for cell in range(table.size):
        values = {a: (cell >> j) & 1 for j, a in enumerate(attrs)}
        if all(values[a] == v for a, v in zip(condition_attrs, condition_values)):
            total += table.counts[cell]
            if values[target_attr] == 1:
                hits += table.counts[cell]
    return hits / total if total > 0 else float("nan")


def main() -> None:
    rng = np.random.default_rng(2014)
    dataset = kosarak_like(num_records=200_000, rng=rng)
    n, d, epsilon = dataset.num_records, dataset.num_attributes, 1.0

    # --- view selection, spelled out ---------------------------------
    strength = choose_strength(n, d, epsilon)
    design = best_design(d, 8, strength)
    predicted = priview_noise_error(n, d, epsilon, 8, design.num_blocks)
    print(
        f"selected t={strength} -> design {design.notation}; "
        f"Eq.5 noise error = {predicted:.2e}"
    )

    synopsis = PriView(epsilon, design=design, seed=1).fit(dataset)

    # --- audit the published views ------------------------------------
    totals = [v.total() for v in synopsis.views]
    minima = [v.counts.min() for v in synopsis.views]
    print(
        f"views audit: totals agree to {max(totals) - min(totals):.2e}; "
        f"most negative cell {min(minima):.3f}"
    )

    # --- analyst queries ----------------------------------------------
    print("\nco-visitation analysis (page indices; 0 = most popular):")
    for pages in [(0, 1, 2), (0, 4, 9), (3, 7, 21)]:
        private = synopsis.marginal(pages)
        truth = dataset.marginal(pages)
        a, b, c = pages
        rate_private = conditional_visit_rate(private, (a, b), (1, 1), c)
        rate_true = conditional_visit_rate(truth, (a, b), (1, 1), c)
        print(
            f"  P(visit {c} | visited {a} and {b}): "
            f"private {rate_private:.3f} vs true {rate_true:.3f}"
        )

    # --- the one-synopsis-many-k property -----------------------------
    print("\nsame synopsis, increasing arity:")
    for k in (2, 4, 6, 8):
        attrs = tuple(range(k))
        table = synopsis.marginal(attrs)
        print(
            f"  k={k}: reconstructed table total = {table.total():,.0f} "
            f"(true N = {n:,})"
        )


if __name__ == "__main__":
    main()
