"""Quickstart: publish a private synopsis, query any k-way marginal.

Run:  python examples/quickstart.py

Walks the full PriView pipeline on a synthetic 32-attribute
click-stream dataset: automatic view selection, noisy view release,
consistency + Ripple post-processing, and max-entropy reconstruction —
then compares the private answers against the truth.
"""

import numpy as np

from repro import PriView
from repro.datasets import kosarak_like
from repro.metrics import jensen_shannon, normalized_l2_error

EPSILON = 1.0


def main() -> None:
    rng = np.random.default_rng(7)
    dataset = kosarak_like(num_records=100_000, rng=rng)
    print(f"dataset: {dataset}")

    # --- the only privacy-consuming step -----------------------------
    mechanism = PriView(epsilon=EPSILON, seed=42)
    synopsis = mechanism.fit(dataset)
    print(f"published synopsis: {synopsis}")
    print(
        f"  {synopsis.num_views} views of "
        f"{synopsis.design.block_size} attributes each "
        f"({synopsis.design.notation}), epsilon = {EPSILON}"
    )

    # --- query marginals of any arity, no further privacy cost -------
    for attrs in [(0, 5), (1, 9, 17, 30), (2, 6, 11, 19, 23, 28)]:
        private = synopsis.marginal(attrs)
        truth = dataset.marginal(attrs)
        l2 = normalized_l2_error(private, truth, dataset.num_records)
        js = jensen_shannon(private, truth)
        covered = "covered" if synopsis.is_covered(attrs) else "reconstructed"
        print(
            f"  {len(attrs)}-way marginal {attrs}: "
            f"L2/N = {l2:.2e}, JS = {js:.2e} ({covered})"
        )

    # --- the headline comparison: the Direct method ------------------
    from repro.baselines import DirectMethod

    attrs = (1, 9, 17, 30)
    direct = DirectMethod(EPSILON, k=4, seed=42).fit(dataset)
    d_err = normalized_l2_error(
        direct.marginal(attrs), dataset.marginal(attrs), dataset.num_records
    )
    p_err = normalized_l2_error(
        synopsis.marginal(attrs), dataset.marginal(attrs), dataset.num_records
    )
    print(
        f"\n4-way marginal {attrs}: PriView L2/N = {p_err:.2e}, "
        f"Direct L2/N = {d_err:.2e} "
        f"({d_err / max(p_err, 1e-12):.0f}x worse)"
    )


if __name__ == "__main__":
    main()
