"""Scenario: learning a graphical model privately from a synopsis.

Run:  python examples/graphical_model.py

The paper's Section 1 observes that practical distributions factor
into low-dimensional terms — the reason marginal tables are sufficient
statistics for graphical models.  This example closes the loop as an
extension: fit a Chow-Liu tree to PriView's published synopsis (pure
post-processing — zero extra privacy budget) and use the tree to

* discover the dependency structure of the private data, and
* answer long-range marginals that no view covers directly.

The dataset is an order-1 Markov chain, whose true dependency graph
is a path; watch the recovered structure match it.
"""

import numpy as np

from repro import PriView
from repro.covering.repository import best_design
from repro.datasets import markov_chain_dataset
from repro.models import TreeModel, chow_liu_tree

EPSILON = 1.0
D = 32


def main() -> None:
    rng = np.random.default_rng(8)
    dataset = markov_chain_dataset(1, 150_000, length=D, rng=rng)
    design = best_design(D, 8, 2)
    synopsis = PriView(EPSILON, design=design, seed=4).fit(dataset)
    print(f"synopsis: {synopsis}")

    tree = chow_liu_tree(synopsis)
    chain_edges = sum(
        1 for u, v in tree.edges if abs(u - v) == 1
    )
    print(
        f"\nChow-Liu structure: {chain_edges}/{D - 1} recovered edges are "
        "chain-adjacent (truth: the data is an order-1 chain)"
    )

    model = TreeModel.from_synopsis(synopsis, tree=tree)
    from repro.marginals.queries import random_attribute_sets

    uncovered = [
        q
        for q in random_attribute_sets(D, 4, 200, rng)
        if not synopsis.is_covered(q)
    ][:6]
    print("\n4-way marginals not covered by any single view:")
    for attrs in uncovered:
        truth = dataset.marginal(attrs).normalized()
        tree_err = np.abs(model.marginal(attrs).normalized() - truth).sum()
        maxent_err = np.abs(
            synopsis.marginal(attrs).normalized() - truth
        ).sum()
        print(
            f"  {attrs}: tree-model L1 = {tree_err:.4f}, "
            f"per-query maxent L1 = {maxent_err:.4f}"
        )
    print(
        "\nThe tree model propagates dependence through the chain, so it"
        "\nbeats per-query max entropy wherever the query spans views."
    )


if __name__ == "__main__":
    main()
